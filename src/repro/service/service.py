"""Sharded bulk-bitwise query service over the expression compiler.

:class:`BitwiseService` owns a table of named bit columns, compiles
incoming queries once (plan cache keyed on the canonicalized
expression), executes batches, attributes energy/cycle/primitive costs
per query, and serves repeated queries from an LRU result cache — the
production-shape layer the ROADMAP's heavy-traffic north star asks
for, in the spirit of X-SRAM's compound in-memory ops and SLIM's
logic-in-memory pipelines.

Two execution backends answer queries:

* ``backend="vector"`` (default) — the **columnar plan-vectorized
  executor**: columns live in a :class:`~repro.service.columnstore.
  ColumnStore` as packed ``(n_shards, words_per_shard)`` uint64
  matrices, each compiled plan lowers once to register-machine
  bytecode (:meth:`~repro.arch.expr.CompiledQuery.vector_program`),
  and every plan step executes as a single ``np.bitwise_*`` kernel
  over the whole matrix — all shards advance together, lock-free, with
  numpy releasing the GIL.  Energy/cycle/primitive accounting comes
  from the closed-form plan coster
  (:func:`~repro.arch.primitives.plan_stats`), which is Stats-exact
  against an engine replay.  Shared sub-expressions are deduplicated
  *across* the queries of a batch through a per-batch node cache
  (a host-simulation optimization only: attributed costs still model
  each query's full plan).

* ``backend="reference"`` — the engine-replay path: one
  :class:`~repro.arch.engine.BulkEngine` per shard, every (query,
  shard) pair a thread-pool task behind per-shard locks.  Slower by
  construction (O(plan-steps × shards) interpreted engine calls), but
  it is the ground truth the vectorized path is pinned against
  bit-for-bit and Stats-for-Stats in the test suite.  (Replay cost is
  column-flag-state dependent and reference batches interleave
  queries across shards nondeterministically, so Stats equality is
  pinned for serialized execution; the vector backend always charges
  the batch's deterministic sequential serialization.)

The table is **mutable and multi-tenant**:

* :meth:`BitwiseService.update_column` / :meth:`~BitwiseService.
  write_slice` / :meth:`~BitwiseService.append_rows` mutate column
  values in place.  Mutations are charged through the
  :class:`~repro.arch.writeback.ScrubAccountant` — dirty rows cost
  FeRAM TBA-write / DRAM restore energy, and query reads accrue
  disturb that triggers QNRO scrubs per the §II write-back economics —
  on a maintenance ledger separate from per-query compute costs.
  Values are applied copy-on-write (vector backend) or under a
  writer-preferring table lock whose read side spans each query
  batch's whole shard fan-out (reference backend), so concurrent
  queries keep serving a consistent pre-mutation snapshot — never a
  torn cross-shard mix.
* Result caching is **dependency-aware**: every cached result is
  indexed by the physical columns its plan reads, and a mutation only
  evicts dependent entries — cache hits survive writes to unrelated
  columns.  Per-column generation counters (plus a table-wide epoch
  bumped by row appends) keep results computed from a pre-mutation
  snapshot out of the cache.
* Tenant namespaces (:mod:`repro.service.tenancy`) map logical column
  names onto disjoint physical names in the shared store, with
  per-tenant bit/cache quotas; compiled plans are shared across
  tenants, caches and accounting are isolated.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.arch.bank import BitVector, pack_bits
from repro.arch.commands import Command, CommandType, Stats
from repro.arch.engine import BulkEngine
from repro.arch.expr import (
    Col,
    CompiledQuery,
    Expr,
    Match,
    _as_expr,
    canonical_key,
    compile_expr,
)
from repro.arch.primitives import default_spec, make_engine, plan_stats
from repro.arch.program import CompiledProgram, Program
from repro.arch.program import compile_program as _compile_program
from repro.arch.program import vector_payload
from repro.arch.spec import MemorySpec
from repro.arch.writeback import ScrubAccountant
from repro.errors import QueryError
from repro.service.columnstore import (
    ColumnStore,
    MatrixPool,
    PackedBits,
    dirty_word_indices,
    popcount_words,
    shard_spans,
)
from repro.service.durability import stats_to_dict
from repro.service.shard_workers import (
    ReplicaSet,
    SharedColumnStore,
    WorkerPool,
)
from repro.service.tenancy import (
    TenantState,
    TenantView,
    check_tenant_name,
    physical_name,
)

__all__ = ["BitwiseService", "QueryResult", "ProgramResult",
           "StatementStats", "MutationResult"]

_WORD_BITS = 64


@dataclass
class QueryResult:
    """Outcome of one query against the service.

    ``payload`` holds the result bits either as a flat 0/1 array or as
    a deferred :class:`~repro.service.columnstore.PackedBits` readout
    (the vector backend's native form — 8x smaller, and counting-only
    consumers never pay the unpack).  Access :attr:`bits` to
    materialize; the property memoizes in place.
    """

    query: str                      #: query as submitted
    key: str                        #: canonical (cache) key
    count: int | None               #: popcount of the result (functional)
    payload: object | None          #: result bits, flat or packed-lazy
    cache_hit: bool
    primitives_per_row: int         #: compiled native primitives / row
    naive_primitives_per_row: int   #: naive-chaining baseline / row
    energy_j: float                 #: attributed in-memory energy
    cycles: int                     #: attributed command cycles
    elapsed_s: float                #: host wall-clock (all shards)
    shards: int                     #: shards that executed the query
    detail: dict = field(default_factory=dict)

    @property
    def bits(self) -> np.ndarray | None:
        """Result bits (functional mode); unpacks lazily, memoized."""
        if isinstance(self.payload, PackedBits):
            self.payload = self.payload.unpack()
        return self.payload


@dataclass
class StatementStats:
    """Attributed cost of one program statement (all shards)."""

    index: int                  #: statement position in the program
    name: str                   #: assigned name
    query: str                  #: statement expression as compiled
    energy_j: float
    cycles: int
    stats: Stats                #: full attributed ledger delta


@dataclass
class ProgramResult:
    """Outcome of one multi-statement program run.

    ``payloads`` maps output names to flat 0/1 arrays or deferred
    :class:`~repro.service.columnstore.PackedBits` readouts; access
    :attr:`outputs` to materialize (memoized in place).
    """

    key: str                        #: canonical program key
    payloads: dict | None           #: output bits per name, maybe packed
    counts: dict | None             #: output popcounts per name
    statements: list[StatementStats]
    primitives_per_row: int         #: compiled native primitives / row
    naive_primitives_per_row: int   #: naive-chaining baseline / row
    energy_j: float                 #: attributed in-memory energy
    cycles: int                     #: attributed command cycles
    elapsed_s: float                #: host wall-clock
    shards: int
    backend: str
    detail: dict = field(default_factory=dict)

    @property
    def outputs(self) -> dict | None:
        """Output bits per name (functional); unpacks lazily."""
        if self.payloads is not None:
            for name, value in self.payloads.items():
                if isinstance(value, PackedBits):
                    self.payloads[name] = value.unpack()
        return self.payloads


@dataclass
class MutationResult:
    """Outcome of one column mutation (update / slice write / append).

    ``rows_written`` counts the physical rows actually dirtied (a
    write of identical data dirties nothing); ``energy_j`` is the
    attributed TBA-write / restore energy of exactly those rows on the
    maintenance ledger.
    """

    op: str                          #: update | write_slice | append_rows
    column: str | None               #: logical name (None for appends)
    tenant: str | None
    offset: int                      #: first logical bit written
    n_bits: int                      #: logical bits covered by the write
    rows_written: int                #: dirty rows charged
    dirty_shards: int                #: shards with at least one dirty row
    energy_j: float                  #: maintenance energy of this write
    cycles: int
    invalidated: int                 #: cached results evicted
    columns_written: tuple[str, ...] = ()


def _payload_copy(payload):
    """Private copy of a result payload.

    Flat arrays are copied (holders may mutate them); a
    :class:`PackedBits` holder is shared as-is — its matrix is
    read-only and every ``.bits`` access materializes a fresh array,
    so sharers can never see each other's mutations.
    """
    if payload is None or isinstance(payload, PackedBits):
        return payload
    return payload.copy()


@dataclass
class _CacheEntry:
    result: QueryResult
    tenant: str | None = None
    cols: tuple[str, ...] = ()       #: physical column dependencies


class _RWLock:
    """Writer-preferring readers/writer lock.

    Reference-backend query batches hold the read side across their
    whole per-shard fan-out, so an in-place payload mutation (the
    write side) can never interleave mid-batch and hand a query a
    torn cross-shard mix of old and new bits.  Waiting writers block
    new readers, so a mutation cannot be starved by a query stream.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._readers or self._writer:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class _Shard:
    """One engine slice: a private engine, its columns, and a lock."""

    def __init__(self, index: int, engine: BulkEngine,
                 span: tuple[int, int]) -> None:
        self.index = index
        self.engine = engine
        self.span = span            # [start, stop) bits of the table
        self.columns: dict[str, BitVector] = {}
        self.anchor: BitVector | None = None
        self.lock = threading.Lock()

    @property
    def n_bits(self) -> int:
        return self.span[1] - self.span[0]


class BitwiseService:
    """A served table of bit columns with compiled bulk-bitwise queries.

    Parameters
    ----------
    technology:
        ``"feram-2tnc"`` (default) or ``"dram"``.
    n_bits:
        Table width — every column holds this many bits.
    n_shards:
        Slices the table is striped over (word-aligned spans); widths
        below ``64 * n_shards`` use fewer shards.
    functional:
        Bit-exact payloads (default).  ``False`` runs counting-mode
        accounting only (GB-scale tables).
    cache_size:
        LRU result-cache capacity (0 disables caching).
    backend:
        ``"vector"`` (default) executes compiled plans as whole-matrix
        numpy kernels with closed-form cost accounting;
        ``"reference"`` replays plans on per-shard engines (the pinned
        ground truth).
    """

    def __init__(self, technology: str = "feram-2tnc", *,
                 n_bits: int, n_shards: int = 4,
                 functional: bool = True,
                 spec: MemorySpec | None = None,
                 cache_size: int = 64,
                 max_workers: int | None = None,
                 backend: str = "vector",
                 capacity: int | None = None,
                 fuse: bool = True,
                 workers: int | None = None,
                 replicas: int = 0) -> None:
        if n_bits <= 0:
            raise QueryError("table width must be positive")
        if n_shards <= 0:
            raise QueryError("need at least one shard")
        if backend not in ("vector", "reference"):
            raise QueryError(f"unknown backend {backend!r} "
                             "(expected 'vector' or 'reference')")
        self.technology = technology
        self.backend = backend
        #: multi-process shard workers (1 = in-process serial)
        self.workers = max(1, int(workers)) if workers is not None else 1
        #: read replicas of the shared store (0 = primary-only reads)
        self.replicas = max(0, int(replicas))
        self.n_bits = int(n_bits)
        #: physical table width the shard geometry covers; the logical
        #: width can grow up to this via append_rows without resharding
        self.capacity = int(capacity if capacity is not None else n_bits)
        if self.capacity < self.n_bits:
            raise QueryError(
                f"capacity {self.capacity} < table width {n_bits}")
        self.functional = functional
        self._spec = spec or default_spec(technology)
        spans = shard_spans(self.capacity, n_shards)
        self._spans = spans
        self.n_shards = len(spans)
        self._shard_rows = [
            (stop - start + self._spec.row_bits - 1)
            // self._spec.row_bits
            for start, stop in spans
        ]
        if backend == "reference":
            self._shards = [
                _Shard(i, make_engine(technology, functional=functional,
                                      spec=spec), span)
                for i, span in enumerate(spans)
            ]
            self._inverting = self._shards[0].engine._native_inverting()
            self._pool = ThreadPoolExecutor(
                max_workers=max_workers or self.n_shards,
                thread_name_prefix="bitwise-shard")
            self._store = None
        else:
            # Columnar state: the packed store plus per-shard analytic
            # ledgers that mirror what per-shard engines would record.
            if spec is not None and spec.technology != technology:
                raise QueryError(
                    f"spec {spec.name!r} is not a {technology!r} spec")
            self._shards = []
            self._pool = None
            # Shared-memory store when process workers or replicas are
            # requested: same geometry and packing, but matrices live
            # in shm segments that worker processes map zero-copy.
            if functional:
                store_cls = SharedColumnStore \
                    if (self.workers > 1 or self.replicas > 0) \
                    else ColumnStore
                self._store = store_cls(self.n_bits, n_shards,
                                        capacity=self.capacity)
            else:
                self._store = None
            self._ledger = Stats()  # merged analytic engine ledger
            self._tba_offsets = [0] * len(spans)
            # Complement-flag encodings the reference engines would
            # leave each column in (parity steering re-encodes columns
            # persistently); evolution is identical on every shard, so
            # one flag per column drives the state-aware coster.
            self._col_flags: dict[str, bool] = {}
            self._rows_used = 0
            shape = self._store.shape if self._store is not None else \
                (self.n_shards, 1)
            self._matrix_pool = MatrixPool(shape)
            self._inverting = self._spec.technology == "feram-2tnc"
        #: run peephole-fused bytecode on the vector backend
        self.fuse = bool(fuse)
        #: the store is a SharedColumnStore (process workers/replicas)
        self._shared_store = isinstance(self._store, SharedColumnStore)
        self._worker_pool: WorkerPool | None = None
        self._worker_pool_lock = threading.Lock()
        # Cost heuristic floor for going multi-process: matrix bytes ×
        # plan steps must clear this before scatter/gather pays for
        # itself.  Instance attribute so tests/benchmarks can force
        # either mode.
        self._parallel_min_work = 64 << 20
        self._stats_lock = threading.Lock()
        # Guards table payloads: query batches hold the read side
        # across execution, in-place mutations the write side.  The
        # plain (non-shared) vector store mutates copy-on-write and
        # needs no read side; the shared store writes dirty words in
        # place and reuses this lock as its snapshot barrier.
        self._table_rw = _RWLock()
        #: per-tenant generation fences: tenant -> {physical: last
        #: write generation} — a replica may serve the tenant only at
        #: or past its own writes (read-your-writes)
        self._fences: dict[str | None, dict[str, int]] = {}
        self.replica_reads = 0
        self._replica_set: ReplicaSet | None = None
        if self._shared_store and self.replicas > 0:
            self._replica_set = ReplicaSet(
                self._store, self.replicas,
                read_lock=self._table_rw.read,
                forget=self._forget_segment)
        # Mutation-path maintenance ledger: dirty-row write charges and
        # read-disturb scrub economics (see arch/writeback.py), kept
        # separate from the compute ledger and identical on both
        # backends (guarded by _stats_lock).
        self._writeback = ScrubAccountant(self._spec, self._shard_rows)
        #: physical column registry (all tenants)
        self._columns: dict[str, int] = {}
        #: tenant namespaces; None is the default/public namespace
        self._tenants: dict[str | None, TenantState] = {
            None: TenantState(None)}
        # Serializes table DDL (create/drop): concurrent clients of the
        # threaded TCP server must not interleave the check-then-act on
        # self._columns (a lost race would overwrite shard vectors and
        # leak allocator rows).
        self._table_lock = threading.RLock()
        self._plans: dict[str, CompiledQuery] = {}
        # Text-level shortcut: repeated query strings skip the parse /
        # canonicalize round-trip entirely (hot for steady traffic).
        # LRU-bounded: distinct strings must not grow memory forever.
        self._plans_by_text: OrderedDict[str, CompiledQuery] = \
            OrderedDict()
        self._plans_by_text_cap = 1024
        self._plans_lock = threading.Lock()
        # Compiled multi-statement programs, keyed by the program's
        # structural signature.  Small LRU: programs are large (one
        # CompiledQuery per statement) but few and long-lived.
        self._program_plans: OrderedDict[tuple, CompiledProgram] = \
            OrderedDict()
        self._program_plans_cap = 8
        self._cache: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._cache_size = int(cache_size)
        self._cache_lock = threading.Lock()
        # Dependency-aware invalidation state (all under _cache_lock):
        # mutations bump the mutated column's generation and evict only
        # the cached results whose plans read it; appends bump the
        # table-wide epoch (every column's value/width changes).
        self._dep_index: dict[str, set[str]] = {}
        self._col_generation: dict[str, int] = {}
        self._epoch = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.queries_served = 0
        self.programs_run = 0
        self.mutations_applied = 0
        # Durability: attach_durability() installs a DurabilityManager
        # that logs every mutation barrier / tenant delta ahead of its
        # state change and snapshots the packed store periodically.
        self._durability = None
        self._closed = False

    # ------------------------------------------------------------------
    # sharding geometry
    # ------------------------------------------------------------------
    @staticmethod
    def _spans(n_bits: int, n_shards: int) -> list[tuple[int, int]]:
        """Word-aligned contiguous shard spans covering ``n_bits``."""
        return shard_spans(n_bits, n_shards)

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------
    def register_tenant(self, name: str, *,
                        quota_bits: int | None = None,
                        quota_energy_nj: float | None = None,
                        cache_entries: int | None = None,
                        max_pending: int | None = None) -> TenantState:
        """Create (or re-configure) a tenant namespace with quotas."""
        check_tenant_name(name)
        with self._table_lock:
            self._log_wal({
                "kind": "tenant", "name": name,
                "quota_bits": quota_bits,
                "quota_energy_nj": quota_energy_nj,
                "cache_entries": cache_entries,
                "max_pending": max_pending})
            state = self._tenants.setdefault(name, TenantState(name))
            state.quota_bits = quota_bits
            state.quota_energy_nj = quota_energy_nj
            state.cache_entries = cache_entries
            state.max_pending = max_pending
            return state

    def tenant(self, name: str | None = None) -> TenantView:
        """A facade binding the service API to one tenant namespace."""
        if name is not None:
            self.tenant_state(name)  # validate + auto-register
        return TenantView(self, name)

    def tenant_state(self, tenant: str | None) -> TenantState:
        """The (auto-created) bookkeeping record of a namespace.

        Lock-free fast path for known tenants: the async server calls
        this from the event-loop thread (admission checks), which must
        never queue behind a long-running mutation's table lock.
        States are created once and never removed, so the dict read is
        safe without the lock."""
        state = self._tenants.get(tenant)
        if state is not None:
            return state
        with self._table_lock:
            state = self._tenants.get(tenant)
            if state is None:
                check_tenant_name(tenant)
                state = self._tenants[tenant] = TenantState(tenant)
            return state

    def tenant_columns(self, tenant: str | None) -> tuple[str, ...]:
        return tuple(self.tenant_state(tenant).columns)

    def _resolve(self, tenant: str | None, name: str) -> str:
        """Physical name of an existing tenant column."""
        return self.tenant_state(tenant).resolve(name)

    def _colmap(self, tenant: str | None, cols) -> dict[str, str]:
        """logical -> physical map for a plan's columns (all bound)."""
        state = self.tenant_state(tenant)
        unknown = [c for c in cols if c not in state.columns]
        if unknown:
            label = "" if tenant is None else f" for tenant {tenant!r}"
            raise QueryError(f"unbound column(s){label}: {unknown}")
        return {c: state.columns[c] for c in cols}

    # ------------------------------------------------------------------
    # column management
    # ------------------------------------------------------------------
    def create_column(self, name: str, bits: np.ndarray | None = None,
                      *, tenant: str | None = None) -> None:
        """Ingest a column (host row writes are charged to each shard).

        ``bits`` may be omitted in counting mode (placeholder rows).
        Creation never invalidates cached results: no cached plan can
        reference a column that did not exist when it was compiled."""
        self._ensure_open()
        with self._table_lock:
            state = self.tenant_state(tenant)
            physical = physical_name(tenant, name)
            if name in state.columns or physical in self._columns:
                raise QueryError(f"column {name!r} already exists")
            state.check_bit_quota(self.capacity)
            if bits is not None:
                bits = np.asarray(bits).astype(np.uint8)
                if bits.ndim != 1 or bits.size != self.n_bits:
                    raise QueryError(
                        f"column {name!r} must be a flat array of "
                        f"{self.n_bits} bits, got shape {bits.shape}")
            elif self.functional:
                raise QueryError(
                    "functional service requires explicit column bits")
            self._log_wal({"kind": "create", "tenant": tenant,
                           "name": name}, bits)
            event = None
            if self.backend == "vector":
                if self._store is not None:
                    event = self._store.add(physical, bits)
                with self._stats_lock:
                    if self.functional:
                        # Mirror the reference path exactly: only a
                        # functional load charges host row writes
                        # (counting-mode allocate charges nothing).
                        self._ledger.record(
                            self._spec,
                            Command(CommandType.ROW_WRITE,
                                    repeat=sum(self._shard_rows)))
                    self._rows_used += sum(self._shard_rows)
                    self._col_flags[physical] = False
            else:
                padded = None
                if self.functional:
                    padded = np.zeros(self.capacity, dtype=np.uint8)
                    padded[: self.n_bits] = bits
                for shard in self._shards:
                    start, stop = shard.span
                    with shard.lock:
                        if self.functional:
                            vec = shard.engine.load(
                                padded[start:stop], physical,
                                group_with=shard.anchor)
                        else:
                            vec = shard.engine.allocate(
                                stop - start, physical,
                                group_with=shard.anchor)
                        shard.anchor = shard.anchor or vec
                        shard.columns[physical] = vec
            self._columns[physical] = self.n_bits
            state.columns[name] = physical
            self._publish_event(event)
            self._maybe_checkpoint()

    def random_column(self, name: str, density: float = 0.5,
                      seed: int | None = None, *,
                      tenant: str | None = None) -> None:
        """Convenience: a random column with the given 1-density."""
        if self.functional:
            rng = np.random.default_rng(seed)
            self.create_column(
                name, (rng.random(self.n_bits) < density).astype(np.uint8),
                tenant=tenant)
        else:
            self.create_column(name, tenant=tenant)

    def drop_column(self, name: str, *,
                    tenant: str | None = None) -> None:
        self._ensure_open()
        with self._table_lock:
            state = self.tenant_state(tenant)
            physical = state.resolve(name)
            self._log_wal({"kind": "drop", "tenant": tenant,
                           "name": name})
            event = None
            if self.backend == "vector":
                if self._store is not None:
                    event = self._store.drop(physical)
                with self._stats_lock:
                    self._rows_used -= sum(self._shard_rows)
                    self._col_flags.pop(physical, None)
            else:
                for shard in self._shards:
                    with shard.lock:
                        vec = shard.columns.pop(physical)
                        shard.engine.free(vec)
                        if shard.anchor is vec:
                            shard.anchor = next(
                                iter(shard.columns.values()), None)
            del self._columns[physical]
            del state.columns[name]
            with self._stats_lock:
                self._writeback.forget(physical)
            self._invalidate_columns((physical,))
            self._publish_event(event)
            self._maybe_checkpoint()

    @property
    def columns(self) -> tuple[str, ...]:
        """Logical column names of the default (public) namespace."""
        return self.tenant_columns(None)

    def column_bits(self, name: str, *, tenant: str | None = None,
                    ) -> np.ndarray | None:
        """Current logical value of a column (functional mode)."""
        physical = self._resolve(tenant, name)
        if not self.functional:
            return None
        if self.backend == "vector":
            return self._store.bits(physical)
        return self._physical_bits(physical)

    def _physical_bits(self, physical: str) -> np.ndarray:
        """Reference-backend readout, sliced to the logical width."""
        parts = []
        with self._table_rw.read():
            for shard in self._shards:
                with shard.lock:
                    parts.append(shard.columns[physical].logical_bits()
                                 [: shard.n_bits])
        return np.concatenate(parts)[: self.n_bits]

    # ------------------------------------------------------------------
    # column mutation
    # ------------------------------------------------------------------
    def update_column(self, name: str,
                      bits: np.ndarray | None = None, *,
                      tenant: str | None = None) -> MutationResult:
        """Replace a column's value in place.

        Only the rows whose content actually changes are dirtied and
        charged (TBA-write / restore energy on the maintenance
        ledger); cached results whose plans read this column are
        evicted, everything else survives.  In counting mode ``bits``
        is omitted and the full width is charged."""
        if self.functional:
            if bits is None:
                raise QueryError(
                    "functional service requires explicit column bits")
            return self._mutate("update", name, 0, bits, tenant=tenant)
        return self._mutate("update", name, 0, self.n_bits,
                            tenant=tenant)

    def write_slice(self, name: str, offset: int,
                    bits: "np.ndarray | int", *,
                    tenant: str | None = None) -> MutationResult:
        """Overwrite ``bits`` starting at logical position ``offset``.

        ``bits`` is a 0/1 array (functional mode) or a plain bit count
        (counting mode, where only the touched rows are charged)."""
        return self._mutate("write_slice", name, offset, bits,
                            tenant=tenant)

    def _mutate(self, op: str, name: str, offset: int,
                bits: "np.ndarray | int", *,
                tenant: str | None) -> MutationResult:
        self._ensure_open()
        with self._table_lock:
            state = self.tenant_state(tenant)
            physical = state.resolve(name)
            if isinstance(bits, (int, np.integer)):
                if self.functional:
                    raise QueryError(
                        "functional service requires explicit bits")
                size = int(bits)
                values = None
            else:
                values = np.asarray(bits).astype(np.uint8)
                if values.ndim != 1:
                    raise QueryError(
                        f"write needs a flat 0/1 array, got shape "
                        f"{values.shape}")
                size = values.size
            offset = int(offset)
            if size <= 0 or offset < 0 or offset + size > self.n_bits:
                raise QueryError(
                    f"write [{offset}, {offset + size}) outside table "
                    f"[0, {self.n_bits})")
            self._log_wal({"kind": op, "tenant": tenant, "name": name,
                           "offset": offset}, values)
            if self.functional:
                old = self._current_bits(physical)
                new = old.copy()
                new[offset:offset + size] = values
                words = dirty_word_indices(old, new, offset,
                                           offset + size)
                rows_by_shard = self._rows_by_shard_words(words)
                event = self._apply_bits(physical, new)
                self._publish_event(event, tenant=tenant,
                                    physical=physical)
            else:
                rows_by_shard = self._rows_by_shard_span(
                    offset, offset + size)
                self._normalize_encoding((physical,))
            with self._stats_lock:
                delta = self._writeback.note_write(physical,
                                                   rows_by_shard)
                state.charge_energy(delta.total_energy_j)
            evicted = self._invalidate_columns((physical,))
            self.mutations_applied += 1
            self._maybe_checkpoint()
        return MutationResult(
            op=op, column=name, tenant=tenant, offset=offset,
            n_bits=size, rows_written=sum(rows_by_shard),
            dirty_shards=sum(1 for rows in rows_by_shard if rows),
            energy_j=delta.total_energy_j,
            cycles=delta.total_cycles, invalidated=evicted,
            columns_written=(name,))

    def append_rows(self, values=None, n: int | None = None, *,
                    tenant: str | None = None) -> MutationResult:
        """Grow the table by ``n`` logical rows (up to the capacity).

        Every column gains ``n`` bits: columns named in ``values``
        (logical name -> appended 0/1 array) get those bits; all
        others are zero-filled (free — the allocator hands out erased
        rows).  Only explicitly written rows are charged.  Appends
        re-encode every column to the plain polarity and invalidate
        the whole result cache (every column's width changed)."""
        self._ensure_open()
        with self._table_lock:
            state = self.tenant_state(tenant)
            arrays: dict[str, np.ndarray | None] = {}
            for logical, bits in dict(values or {}).items():
                physical = state.resolve(logical)
                if bits is None:
                    arrays[physical] = None
                else:
                    arr = np.asarray(bits).astype(np.uint8)
                    if arr.ndim != 1:
                        raise QueryError(
                            f"appended bits for {logical!r} must be a "
                            f"flat 0/1 array, got shape {arr.shape}")
                    arrays[physical] = arr
            sizes = {arr.size for arr in arrays.values()
                     if arr is not None}
            if n is None:
                if len(sizes) != 1:
                    raise QueryError(
                        "append_rows needs n= or uniformly sized "
                        "values")
                n = sizes.pop()
            n = int(n)
            if n <= 0:
                raise QueryError("must append at least one row")
            if sizes and sizes != {n}:
                raise QueryError(
                    f"appended value sizes {sorted(sizes)} != n={n}")
            if self.functional and any(arr is None
                                       for arr in arrays.values()):
                raise QueryError(
                    "functional service requires explicit bits")
            old_n, new_n = self.n_bits, self.n_bits + n
            if new_n > self.capacity:
                raise QueryError(
                    f"append of {n} rows exceeds capacity "
                    f"{self.capacity} (logical width {old_n})")
            if self._durability is not None:
                logicals = list(dict(values or {}))
                self._log_wal(
                    {"kind": "append", "tenant": tenant, "n": n,
                     "names": logicals},
                    [arrays[state.resolve(logical)]
                     for logical in logicals] or None)
            per_column: dict[str, list[int]] = {}
            news: dict[str, np.ndarray] = {}
            if self.functional:
                for physical, arr in arrays.items():
                    old_full = np.zeros(new_n, dtype=np.uint8)
                    old_full[:old_n] = self._current_bits(physical)
                    new_full = old_full.copy()
                    new_full[old_n:new_n] = arr
                    words = dirty_word_indices(old_full, new_full,
                                               old_n, new_n)
                    per_column[physical] = \
                        self._rows_by_shard_words(words)
                    news[physical] = new_full
            else:
                span_rows = self._rows_by_shard_span(old_n, new_n)
                per_column = dict.fromkeys(arrays, span_rows)
            self.n_bits = new_n
            resize_event = None
            if self._store is not None:
                if self._shared_store:
                    # Readers consult the mask during popcounts; the
                    # in-place mask rewrite needs the write barrier.
                    with self._table_rw.write():
                        resize_event = self._store.resize(new_n)
                else:
                    self._store.resize(new_n)
            set_events = self._apply_append(news)
            self._publish_event(resize_event)
            for physical, event in set_events:
                self._publish_event(event, tenant=tenant,
                                    physical=physical)
            for physical in self._columns:
                self._columns[physical] = new_n
            total = Stats()
            with self._stats_lock:
                for physical, rows_by_shard in per_column.items():
                    total.iadd(self._writeback.note_write(
                        physical, rows_by_shard))
                state.charge_energy(total.total_energy_j)
            evicted = self._invalidate_all()
            self.mutations_applied += 1
            self._maybe_checkpoint()
        rows_by_shard = [0] * self.n_shards
        for shard_rows in per_column.values():
            for index, rows in enumerate(shard_rows):
                rows_by_shard[index] += rows
        return MutationResult(
            op="append_rows", column=None, tenant=tenant,
            offset=old_n, n_bits=n,
            rows_written=sum(rows_by_shard),
            dirty_shards=sum(1 for rows in rows_by_shard if rows),
            energy_j=total.total_energy_j,
            cycles=total.total_cycles, invalidated=evicted,
            columns_written=tuple(dict(values or {})))

    # -- mutation plumbing ---------------------------------------------
    def _current_bits(self, physical: str) -> np.ndarray:
        if self.backend == "vector":
            return self._store.bits(physical)
        return self._physical_bits(physical)

    def _rewrite_reference_payload(self, physical: str,
                                   padded: np.ndarray) -> None:
        """In-place payload rewrite, plain-encoded (write lock held)."""
        row_bits = self._spec.row_bits
        for shard in self._shards:
            start, stop = shard.span
            vec = shard.columns[physical]
            grid = np.zeros(vec.n_rows * row_bits, dtype=np.uint8)
            grid[: stop - start] = padded[start:stop]
            vec.payload = pack_bits(grid, row_bits)
            vec.complemented = False

    def _apply_bits(self, physical: str, new: np.ndarray):
        """Bind a column to a new logical value, plain-encoded.

        Vector backend: copy-on-write matrix rebind (snapshots keep
        the old view) — except the shared store, which writes the
        dirty-word diff in place under the table write lock (query
        batches hold the read side across execution) and returns the
        replica event for the caller to publish *after* this returns,
        outside the write lock.  Reference backend: in-place payload
        rewrite under the same write lock — stat-neutral (host
        simulation of the TBA write whose energy the accountant
        charges analytically), and atomic against in-flight query
        batches, which hold the read side across their whole shard
        fan-out."""
        if self.backend == "vector":
            if self._shared_store:
                with self._table_rw.write():
                    event = self._store.set(physical, new)
            else:
                self._store.set(physical, new)
                event = None
            with self._stats_lock:
                self._col_flags[physical] = False
            return event
        padded = np.zeros(self.capacity, dtype=np.uint8)
        padded[: new.size] = new
        with self._table_rw.write():
            self._rewrite_reference_payload(physical, padded)
        return None

    def _normalize_encoding(self, physicals) -> None:
        """Force columns to the plain (non-complemented) encoding."""
        if self.backend == "vector":
            with self._stats_lock:
                for physical in physicals:
                    if physical in self._col_flags:
                        self._col_flags[physical] = False
            return
        with self._table_rw.write():
            for shard in self._shards:
                for physical in physicals:
                    vec = shard.columns.get(physical)
                    if vec is not None and vec.complemented:
                        if vec.payload is not None:
                            vec.payload = ~vec.payload
                        vec.complemented = False

    def _apply_append(self, news: dict[str, np.ndarray]
                      ) -> list[tuple[str, tuple | None]]:
        """Write appended values and re-encode every column plain.

        Returns the shared-store replica events (empty otherwise)."""
        events: list[tuple[str, tuple | None]] = []
        if self.backend == "vector":
            for physical, new in news.items():
                event = self._apply_bits(physical, new)
                if event is not None:
                    events.append((physical, event))
        else:
            # One atomic critical section for the whole append.
            with self._table_rw.write():
                for physical, new in news.items():
                    padded = np.zeros(self.capacity, dtype=np.uint8)
                    padded[: new.size] = new
                    self._rewrite_reference_payload(physical, padded)
        others = [physical for physical in self._columns
                  if physical not in news]
        self._normalize_encoding(others)
        return events

    def _publish_event(self, event: tuple | None, *,
                       tenant: str | None = None,
                       physical: str | None = None) -> None:
        """Forward a shared-store mutation event to the replicas.

        Must be called with the table write lock *released*: a full
        replica queue blocks the publisher until the applier drains,
        and the applier takes the table read lock for structural
        catch-up copies.  ``set`` events also advance the mutating
        tenant's generation fence (read-your-writes)."""
        if event is None or not self._shared_store:
            return
        if self._replica_set is not None:
            if event[0] == "set" and physical is not None:
                self._fences.setdefault(tenant, {})[physical] = event[2]
            elif event[0] == "drop":
                # A recreated physical restarts its generation at 1;
                # a stale fence would refuse every replica for that
                # tenant forever (and the dict would grow unboundedly).
                for fence in self._fences.values():
                    fence.pop(event[1], None)
            self._replica_set.publish(event)
        elif event[0] == "drop":
            self._forget_segment(event[3])

    def _forget_segment(self, segment_name: str) -> None:
        pool = self._worker_pool
        if pool is not None:
            pool.forget(segment_name)

    def _get_worker_pool(self) -> WorkerPool:
        pool = self._worker_pool
        if pool is None:
            with self._worker_pool_lock:
                pool = self._worker_pool
                if pool is None:
                    pool = WorkerPool(self._store.shape,
                                      workers=self.workers)
                    self._worker_pool = pool
        return pool

    def _use_process_pool(self, program) -> bool:
        """Scatter to shard workers only when configured and worth it:
        matrix bytes × plan steps must clear ``_parallel_min_work`` —
        below that, pipe round-trips cost more than they save."""
        if self.workers <= 1 or not self._shared_store:
            return False
        shape = self._store.shape
        if shape[0] < 2:
            return False
        work = shape[0] * shape[1] * 8 * max(1, len(program.steps))
        return work >= self._parallel_min_work

    def _rows_by_shard_words(self, words: np.ndarray) -> list[int]:
        """Dirty physical rows per shard for changed word indices."""
        rows = [0] * self.n_shards
        if len(words) == 0:
            return rows
        starts = np.array([start for start, _ in self._spans],
                          dtype=np.int64)
        bitpos = np.asarray(words, dtype=np.int64) * _WORD_BITS
        shard = np.searchsorted(starts, bitpos, side="right") - 1
        row = (bitpos - starts[shard]) // self._spec.row_bits
        keys = shard * (self.capacity // self._spec.row_bits + 2) + row
        fresh = np.ones(len(keys), dtype=bool)
        fresh[1:] = keys[1:] != keys[:-1]
        for index in shard[fresh]:
            rows[index] += 1
        return rows

    def _rows_by_shard_span(self, lo: int, hi: int) -> list[int]:
        """Rows per shard overlapping logical bit span ``[lo, hi)``."""
        rows = []
        row_bits = self._spec.row_bits
        for start, stop in self._spans:
            a, b = max(lo, start), min(hi, stop)
            rows.append(0 if a >= b else
                        (b - 1 - start) // row_bits
                        - (a - start) // row_bits + 1)
        return rows

    # ------------------------------------------------------------------
    # payload readout
    # ------------------------------------------------------------------
    #: max bits per read_bits page — a readout op must stay cheap (it
    #: serializes behind the tenant's scheduler barrier); clients page
    MAX_PAGE_BITS = 1 << 20

    def _read_page(self, name: str, offset: int, limit: int,
                   tenant: str | None) -> tuple[np.ndarray, int, str]:
        """Shared page readout core: ``(page_bits, total, source)``."""
        self._ensure_open()
        offset, limit = int(offset), int(limit)
        if offset < 0 or limit < 0:
            raise QueryError("offset and limit must be non-negative")
        if limit > self.MAX_PAGE_BITS:
            raise QueryError(
                f"page limit {limit} > {self.MAX_PAGE_BITS}; "
                f"fetch payloads in pages")
        state = self.tenant_state(tenant)
        if name in state.columns:
            bits = self.column_bits(name, tenant=tenant)
            source = "column"
        else:
            entry = self._cache_peek(self._cache_scope(tenant, name))
            if entry is None:
                raise QueryError(
                    f"no column or cached result {name!r}")
            bits = entry.result.bits
            source = "result"
        if bits is None:
            raise QueryError(
                f"{name!r} has no payload (counting mode)")
        return bits[offset:offset + limit], int(bits.size), source

    def read_bits(self, name: str, offset: int = 0, limit: int = 64,
                  *, tenant: str | None = None) -> dict:
        """Paginated payload readout of a column or cached result.

        ``name`` is a tenant-logical column name, or the canonical
        ``key`` of a previously returned (and still cached) query
        result.  Returns a JSON-safe page: the bits as a ``"0101..."``
        string plus the total payload width."""
        page, total, source = self._read_page(name, offset, limit,
                                              tenant)
        text = (np.minimum(page.astype(np.uint8), 1)
                + ord("0")).tobytes().decode("ascii")
        return {
            "name": name, "source": source, "offset": int(offset),
            "limit": int(limit), "total": total,
            "bits": text,
        }

    def read_bits_array(self, name: str, offset: int = 0,
                        limit: int = 64, *,
                        tenant: str | None = None) -> dict:
        """Like :meth:`read_bits`, but the page stays a 0/1 array.

        Serving path for the binary wire protocol: the page is packed
        straight into a frame payload with no text round-trip."""
        page, total, source = self._read_page(name, offset, limit,
                                              tenant)
        return {
            "name": name, "source": source, "offset": int(offset),
            "limit": int(limit), "total": total,
            "bits": np.minimum(page.astype(np.uint8), 1),
        }

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def compile(self, query: "Expr | str") -> CompiledQuery:
        """Compile (or fetch the cached plan for) a query."""
        text = query if isinstance(query, str) else None
        if text is not None:
            with self._plans_lock:
                plan = self._plans_by_text.get(text)
                if plan is not None:
                    self._plans_by_text.move_to_end(text)
                    return plan
        expr = _as_expr(query)
        key = canonical_key(expr)
        with self._plans_lock:
            plan = self._plans.get(key)
        if plan is None:
            plan = compile_expr(expr, inverting=self._inverting)
            with self._plans_lock:
                plan = self._plans.setdefault(key, plan)
        if text is not None:
            with self._plans_lock:
                self._plans_by_text.setdefault(text, plan)
                self._plans_by_text.move_to_end(text)
                while len(self._plans_by_text) > \
                        self._plans_by_text_cap:
                    self._plans_by_text.popitem(last=False)
        return plan

    def query(self, query: "Expr | str", *,
              use_cache: bool = True,
              tenant: str | None = None) -> QueryResult:
        """Execute one query (see :meth:`execute` for batches)."""
        return self.execute([query], use_cache=use_cache,
                            tenant=tenant)[0]

    def match(self, cols, key, mask=None, *,
              use_cache: bool = True,
              tenant: str | None = None) -> QueryResult:
        """CAM search: rows where the named columns equal ``key``.

        ``key``/``mask`` follow :class:`repro.arch.expr.Match` — the
        key maps positionally onto ``cols`` (``"1x0"``-style strings
        use ``x`` for don't-care; bit sequences use ``None``), and
        ``mask`` bit 1 marks a compared position.  The search lowers
        to the ordinary AIG/bytecode pipeline, so caching, batching,
        and the closed-form per-search energy all apply unchanged.
        """
        exprs = [Col(c) if isinstance(c, str) else c for c in cols]
        return self.query(Match(*exprs, key=key, mask=mask),
                          use_cache=use_cache, tenant=tenant)

    def execute(self, queries, *,
                use_cache: bool = True,
                tenant: str | None = None,
                tenants=None) -> list[QueryResult]:
        """Execute a batch of queries.

        The vector backend runs each distinct uncached plan as one
        sequence of whole-matrix numpy kernels (all shards at once,
        sub-expressions shared across the batch within each tenant);
        the reference backend fans every (query, shard) pair onto a
        thread pool behind per-shard locks.  Results are attributed
        per query (energy, cycles, native primitives) and cached by
        canonical key (tenant-scoped) on both paths.

        ``tenant`` binds the whole batch to one namespace;
        ``tenants`` (aligned with ``queries``) lets the async
        scheduler coalesce queries from different tenants into one
        vector batch.
        """
        self._ensure_open()
        queries = list(queries)
        if tenants is None:
            tenant_list: list[str | None] = [tenant] * len(queries)
        else:
            tenant_list = list(tenants)
            if len(tenant_list) != len(queries):
                raise QueryError("tenants must align with queries")
        plans: list[tuple[str, CompiledQuery | None, QueryResult | None]]
        plans = []
        pending: dict[str, dict] = {}
        for position, (query, owner) in enumerate(
                zip(queries, tenant_list)):
            text = query if isinstance(query, str) else str(query)
            plan = self.compile(query)
            colmap = self._colmap(owner, plan.cols)
            ckey = self._cache_scope(owner, plan.key)
            cached = self._cache_get(ckey) if use_cache else None
            if cached is not None:
                entry = cached.result
                # Fresh bits/detail per hit: a caller mutating its
                # result must not poison the cached copy (or vice
                # versa).
                result = QueryResult(**{
                    **entry.__dict__,
                    "query": text, "cache_hit": True,
                    "payload": _payload_copy(entry.payload),
                    "detail": dict(entry.detail),
                    "energy_j": 0.0, "cycles": 0, "elapsed_s": 0.0,
                })
                plans.append((text, None, result))
                continue
            plans.append((text, plan, None))
            item = pending.setdefault(ckey, {
                "plan": plan, "tenant": owner, "colmap": colmap,
                "positions": []})
            item["positions"].append(position)

        # The snapshot keeps a result computed before a concurrent
        # column mutation out of the (already invalidated) cache:
        # epoch catches table-wide appends, per-column generations
        # catch drops/updates of exactly the columns this plan read.
        with self._cache_lock:
            snapshot = (self._epoch, {
                physical: self._col_generation.get(physical, 0)
                for item in pending.values()
                for physical in item["colmap"].values()})
        if self.backend == "vector":
            outputs = self._run_batch_vector(pending)
        else:
            outputs = self._run_batch_reference(pending)

        results: list[QueryResult | None] = [entry[2] for entry in plans]
        for ckey, item in pending.items():
            positions = item["positions"]
            plan = item["plan"]
            text = plans[positions[0]][0]
            payload, count, delta, elapsed = outputs[ckey][:4]
            # Bounded-stale replica reads append cacheable=False: the
            # cache snapshot carries primary generations, so caching
            # them would make the staleness permanent.
            cacheable = len(outputs[ckey]) < 5 or outputs[ckey][4]
            result = QueryResult(
                query=text, key=plan.key, count=count, payload=payload,
                cache_hit=False,
                primitives_per_row=plan.primitives,
                naive_primitives_per_row=plan.naive_primitives,
                energy_j=delta.total_energy_j,
                cycles=delta.total_cycles,
                elapsed_s=elapsed,
                shards=self.n_shards,
                detail=delta.summary(),
            )
            if use_cache and cacheable:
                self._cache_put(ckey, result, snapshot, item["tenant"],
                                tuple(item["colmap"].values()))
            results[positions[0]] = result
            # Canonically-equal duplicates in the batch get their own
            # result objects: correct query label, private bits.
            for position in positions[1:]:
                results[position] = QueryResult(**{
                    **result.__dict__,
                    "query": plans[position][0],
                    "payload": _payload_copy(result.payload),
                    "detail": dict(result.detail),
                })
        # Disturb accounting: each executed plan activates its
        # referenced columns' rows once (cache hits are served from
        # the host cache and accrue no disturb — the QNRO win).
        # Energy quotas accrue here too: one charge per *executed*
        # plan to its owner (batch duplicates share the execution;
        # cache hits spend nothing).
        if pending:
            with self._stats_lock:
                charged = []
                for ckey, item in pending.items():
                    for physical in item["colmap"].values():
                        self._writeback.note_read(physical)
                    energy = outputs[ckey][2].total_energy_j
                    self.tenant_state(item["tenant"]).charge_energy(
                        energy)
                    charged.append({
                        "tenant": item["tenant"],
                        "energy_j": energy,
                        "cols": list(item["colmap"].values())})
                if self._durability is not None:
                    self._log_charges_locked(charged, pending, outputs)
        with self._cache_lock:
            self.queries_served += len(plans)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # multi-statement programs
    # ------------------------------------------------------------------
    def compile_program(self, program: Program) -> CompiledProgram:
        """Compile (or fetch the cached plan for) a program."""
        signature = (
            tuple((name, str(expr)) for name, expr in program.statements),
            program.outputs,
        )
        with self._plans_lock:
            cprog = self._program_plans.get(signature)
            if cprog is not None:
                self._program_plans.move_to_end(signature)
                return cprog
        cprog = _compile_program(program, inverting=self._inverting)
        with self._plans_lock:
            cprog = self._program_plans.setdefault(signature, cprog)
            self._program_plans.move_to_end(signature)
            while len(self._program_plans) > self._program_plans_cap:
                self._program_plans.popitem(last=False)
        return cprog

    def run_program(self, program: "Program | CompiledProgram", *,
                    tenant: str | None = None) -> ProgramResult:
        """Execute a multi-statement program over the table.

        The vector backend runs the program's multi-output bytecode as
        whole-matrix numpy kernels (cross-statement CSE, registers
        recycled at last use) and expands the probed per-statement
        charge events in closed form; the reference backend replays
        every statement on each shard engine.  Both attribute one
        Stats delta per statement and are pinned bit- and Stats-exact
        against each other in the test suite.
        """
        self._ensure_open()
        cprog = program if isinstance(program, CompiledProgram) \
            else self.compile_program(program)
        if cprog.inverting != self._inverting:
            raise QueryError("program compiled for the other polarity")
        colmap = self._colmap(tenant, cprog.cols)
        start = time.perf_counter()
        if self.backend == "vector":
            outputs, counts, per_stmt = self._run_program_vector(
                cprog, colmap)
        else:
            outputs, counts, per_stmt = self._run_program_reference(
                cprog, colmap)
        elapsed = time.perf_counter() - start
        # Disturb accounting: every statement activates the external
        # columns it references once (a name shadowed by an earlier
        # statement reads the intermediate, not the column).
        read_cols: list[str] = []
        with self._stats_lock:
            shadowed: set[str] = set()
            for name, plan in cprog.stmt_plans:
                for col in plan.cols:
                    if col not in shadowed and col in colmap:
                        self._writeback.note_read(colmap[col])
                        read_cols.append(colmap[col])
                shadowed.add(name)
        total = Stats()
        statements = []
        for index, ((name, plan), stats) in enumerate(
                zip(cprog.stmt_plans, per_stmt)):
            total.iadd(stats)
            statements.append(StatementStats(
                index=index, name=name, query=str(plan.expr),
                energy_j=stats.total_energy_j,
                cycles=stats.total_cycles, stats=stats))
        with self._stats_lock:
            self.tenant_state(tenant).charge_energy(
                total.total_energy_j)
            if self._durability is not None:
                flags = {
                    physical: self._col_flags.get(physical, False)
                    for physical in colmap.values()
                    if physical in self._col_flags}
                self._log_wal(
                    {"kind": "charges",
                     "items": [{"tenant": tenant,
                                "energy_j": total.total_energy_j,
                                "cols": read_cols}],
                     "flags": flags,
                     "tba": list(self._tba_offsets),
                     "ledger": stats_to_dict(total)},
                    barrier=False)
        with self._cache_lock:
            self.programs_run += 1
        return ProgramResult(
            key=cprog.key, payloads=outputs, counts=counts,
            statements=statements,
            primitives_per_row=cprog.primitives,
            naive_primitives_per_row=cprog.naive_primitives,
            energy_j=total.total_energy_j, cycles=total.total_cycles,
            elapsed_s=elapsed, shards=self.n_shards,
            backend=self.backend, detail=total.summary())

    def _run_program_vector(self, cprog: CompiledProgram,
                            colmap: dict[str, str]):
        """Columnar program execution + closed-form attribution."""
        outputs = counts = None
        if self.functional and self._shared_store:
            # Programs always run on the primary; the read lock is the
            # snapshot (the shared store mutates in place).
            with self._table_rw.read():
                matrices_map = self._store._matrices
                missing = [physical for physical in colmap.values()
                           if physical not in matrices_map]
                if missing:
                    raise QueryError(f"unbound column(s): {missing}")
                program = cprog.vector_program(fused=self.fuse)
                if self._use_process_pool(program):
                    plan_key, spec = cprog.vector_payload(
                        fused=self.fuse)
                    colspec = {
                        logical: self._store.segment_name(physical)
                        for logical, physical in colmap.items()}
                    gens = {physical:
                            self._store.generations.get(physical, 0)
                            for physical in colmap.values()}
                    out_keys = list(program.out_regs)
                    scattered = self._get_worker_pool().execute(
                        plan_key, spec, colspec,
                        self._store.mask_segment, out_keys,
                        gens=gens, take_matrix=self._matrix_pool.take)
                    outputs = {name: PackedBits(self._store,
                                                scattered[name][1])
                               for name in out_keys}
                    counts = {name: int(scattered[name][0].sum())
                              for name in out_keys}
                else:
                    columns = {logical: matrices_map[physical]
                               for logical, physical in colmap.items()}
                    matrices = program.run_outputs(
                        columns, shape=self._store.shape,
                        pool=self._matrix_pool)
                    outputs = {name: PackedBits(self._store, matrix)
                               for name, matrix in matrices.items()}
                    counts = {
                        name: int(self._store.popcounts(matrix).sum())
                        for name, matrix in matrices.items()}
        elif self.functional:
            snapshot = self._store.snapshot()
            missing = [physical for physical in colmap.values()
                       if physical not in snapshot]
            if missing:
                raise QueryError(f"unbound column(s): {missing}")
            columns = {logical: snapshot[physical]
                       for logical, physical in colmap.items()}
            program = cprog.vector_program(fused=self.fuse)
            matrices = program.run_outputs(
                columns, shape=self._store.shape,
                pool=self._matrix_pool)
            # Output matrices stay owned by the result (deferred
            # readout) — they must NOT go back to the pool.
            outputs = {name: PackedBits(self._store, matrix)
                       for name, matrix in matrices.items()}
            counts = {name: int(self._store.popcounts(matrix).sum())
                      for name, matrix in matrices.items()}
        per_stmt = self._charge_program(cprog, colmap)
        return outputs, counts, per_stmt

    def _charge_program(self, cprog: CompiledProgram,
                        colmap: dict[str, str]) -> list[Stats]:
        """Closed-form per-statement Stats for one program execution.

        Statement events expand per shard with the running FeRAM
        control-rewrite counter threaded through the statements in
        order — exactly the interleaving a shard replay produces.
        """
        per_stmt = [Stats() for _ in cprog.stmt_plans]
        with self._stats_lock:
            flags = tuple(self._col_flags.get(colmap[col], False)
                          for col in cprog.cols)
            events, final = cprog.cost_events(flags)
            for col, flag in zip(cprog.cols, final):
                physical = colmap[col]
                if physical in self._col_flags:
                    self._col_flags[physical] = flag
            memo = cprog._plan_stats_memo
            shard_counts: dict[tuple, int] = {}
            for index, n_rows in enumerate(self._shard_rows):
                # Keyed by spec too: a CompiledProgram can be handed to
                # services running different technologies.
                state = (self._spec, flags, n_rows,
                         self._tba_offsets[index])
                costed = memo.get(state)
                if costed is None:
                    offset = state[3]
                    deltas = []
                    for stmt_events in events:
                        stats, offset = plan_stats(
                            self._spec, stmt_events, n_rows,
                            tba_offset=offset)
                        deltas.append(stats)
                    if len(memo) >= 256:  # offsets cycle; stay bounded
                        memo.clear()
                    costed = (tuple(deltas), offset)
                    memo[state] = costed
                self._tba_offsets[index] = costed[1]
                shard_counts[state] = shard_counts.get(state, 0) + 1
            # Shards in the same (rows, tba_offset) state replay the
            # exact same deltas — accumulate each distinct state once,
            # scaled by its shard count, instead of merging per shard.
            for state, n_shards in shard_counts.items():
                deltas = memo[state][0]
                if n_shards == 1:
                    for target, delta in zip(per_stmt, deltas):
                        target.iadd(delta)
                else:
                    for target, delta in zip(per_stmt, deltas):
                        target.iadd_scaled(delta, n_shards)
            for stats in per_stmt:
                self._ledger.iadd(stats)
        return per_stmt

    def _run_program_reference(self, cprog: CompiledProgram,
                               colmap: dict[str, str]):
        """Engine replay: the whole program on every shard."""
        with self._table_rw.read():
            futures = [
                self._pool.submit(self._run_program_on_shard, shard,
                                  cprog, colmap)
                for shard in self._shards
            ]
            shard_outputs = [future.result() for future in futures]
        per_stmt = [Stats() for _ in cprog.stmt_plans]
        for _, deltas in shard_outputs:
            for target, delta in zip(per_stmt, deltas):
                target.iadd(delta)
        outputs = counts = None
        if self.functional:
            outputs = {
                name: np.concatenate(
                    [bits[name] for bits, _ in shard_outputs]
                )[: self.n_bits]
                for name in cprog.program.outputs
            }
            counts = {name: int(arr.sum())
                      for name, arr in outputs.items()}
        return outputs, counts, per_stmt

    def _run_program_on_shard(self, shard: _Shard,
                              cprog: CompiledProgram,
                              colmap: dict[str, str]):
        with shard.lock:
            engine = shard.engine
            columns = {logical: shard.columns[physical]
                       for logical, physical in colmap.items()}
            vectors, deltas = cprog.run(engine, columns,
                                        n_bits=shard.n_bits)
            bits = None
            if self.functional:
                bits = {name: vec.logical_bits()[: shard.n_bits]
                        for name, vec in vectors.items()}
            engine.free(*vectors.values())
        return bits, deltas

    # ------------------------------------------------------------------
    # vector backend
    # ------------------------------------------------------------------
    def _run_batch_vector(self, pending: dict[str, dict],
                          ) -> dict[str, tuple]:
        """Columnar execution: O(plan-steps) kernels per distinct query.

        Every distinct plan runs once over the full column matrices;
        the per-batch ``node_cache`` shares identical sub-expressions
        across the batch's queries (attributed costs still model each
        plan standalone, matching the reference replay exactly).
        Node caches are scoped per tenant — the same structural
        sub-expression names different data in different namespaces.
        """
        if self._shared_store:
            return self._run_batch_shared(pending)
        snapshot = self._store.snapshot() if self._store is not None \
            else {}
        node_caches: dict[str | None, dict[str, np.ndarray]] = {}
        outputs: dict[str, tuple] = {}
        for ckey, item in pending.items():
            plan = item["plan"]
            colmap = item["colmap"]
            start = time.perf_counter()
            payload = count = None
            if self.functional:
                missing = [physical for physical in colmap.values()
                           if physical not in snapshot]
                if missing:
                    raise QueryError(f"unbound column(s): {missing}")
                columns = {logical: snapshot[physical]
                           for logical, physical in colmap.items()}
                program = plan.vector_program(fused=self.fuse)
                matrix = program.run(
                    columns, shape=self._store.shape,
                    pool=self._matrix_pool,
                    node_cache=node_caches.setdefault(
                        item["tenant"], {}))
                count = int(self._store.popcounts(matrix).sum())
                # The matrix stays owned by the result; .bits unpacks
                # on first access (counting clients never pay it).
                payload = PackedBits(self._store, matrix)
            delta = self._charge_vector(plan, colmap)
            outputs[ckey] = (payload, count, delta,
                             time.perf_counter() - start)
        return outputs

    # -- shared-memory store: scatter/gather + replica routing ---------
    def _primary_view(self) -> tuple:
        store = self._store
        mask = None if store._full else store._mask
        return (store._matrices, store.segment_name,
                store.mask_segment, mask, store.generations)

    def _replica_view(self, replica) -> tuple:
        mask = None if self._store._full else replica.mask_matrix
        return (replica.matrices,
                lambda physical: replica.segments[physical].name,
                replica.mask_segment(), mask, replica.applied_gen)

    def _masked_count(self, matrix: np.ndarray,
                      mask: np.ndarray | None) -> int:
        if mask is not None:
            matrix = np.bitwise_and(matrix, mask)
        return int(popcount_words(matrix).sum(dtype=np.int64))

    def _run_batch_shared(self, pending: dict[str, dict],
                          ) -> dict[str, tuple]:
        """Shared-store batch: route each item to a caught-up replica
        when possible, execute the rest on the primary under the table
        read lock (the shared store mutates in place, so the lock *is*
        the snapshot)."""
        outputs: dict[str, tuple] = {}
        primary: dict[str, dict] = {}
        routed: list[tuple[str, dict, object, bool]] = []
        if self._replica_set is not None:
            struct = self._store.struct_generation
            mask_gen = self._store.mask_generation
            for ckey, item in pending.items():
                physicals = list(item["colmap"].values())
                fences = self._fences.get(item["tenant"])
                replica = self._replica_set.pick(
                    physicals, fences, struct, mask_gen)
                if replica is None:
                    primary[ckey] = item
                    continue
                # Only a result computed from fully-caught-up columns
                # may enter the result cache: the cache snapshot is
                # stamped with *primary* generations, so caching a
                # bounded-stale replica read would freeze staleness in.
                fresh = all(
                    replica.applied_gen.get(p, 0) >=
                    self._store.generations.get(p, 0)
                    for p in physicals)
                routed.append((ckey, item, replica, fresh))
        else:
            primary = dict(pending)
        if primary:
            with self._table_rw.read():
                view = self._primary_view()
                node_caches: dict = {}
                for ckey, item in primary.items():
                    outputs[ckey] = self._exec_shared_item(
                        item, view, node_caches)
        for ckey, item, replica, fresh in routed:
            with replica.rw.read():
                result = self._exec_shared_item(
                    item, self._replica_view(replica), {})
            outputs[ckey] = result[:4] + (fresh,)
            with self._stats_lock:
                self.replica_reads += 1
        return outputs

    def _exec_shared_item(self, item: dict, view: tuple,
                          node_caches: dict) -> tuple:
        """One pending batch entry against a primary/replica view.

        Scatters to the worker pool when the work clears the floor
        (workers return per-shard popcounts; the result matrix is
        copied out of the shared output segment), otherwise runs the
        bytecode in-process."""
        matrices, segname, mask_seg, mask, gens = view
        plan = item["plan"]
        colmap = item["colmap"]
        start = time.perf_counter()
        missing = [physical for physical in colmap.values()
                   if physical not in matrices]
        if missing:
            raise QueryError(f"unbound column(s): {missing}")
        program = plan.vector_program(fused=self.fuse)
        if self._use_process_pool(program):
            plan_key, spec = vector_payload(plan, fused=self.fuse)
            colspec = {logical: segname(physical)
                       for logical, physical in colmap.items()}
            job_gens = {physical: gens.get(physical, 0)
                        for physical in colmap.values()}
            result = self._get_worker_pool().execute(
                plan_key, spec, colspec, mask_seg, [None],
                gens=job_gens, take_matrix=self._matrix_pool.take)
            shard_counts, matrix = result[None]
            count = int(shard_counts.sum())
        else:
            columns = {logical: matrices[physical]
                       for logical, physical in colmap.items()}
            matrix = program.run(
                columns, shape=self._store.shape,
                pool=self._matrix_pool,
                node_cache=node_caches.setdefault(item["tenant"], {}))
            count = self._masked_count(matrix, mask)
        payload = PackedBits(self._store, matrix)
        delta = self._charge_vector(plan, colmap)
        return (payload, count, delta, time.perf_counter() - start)

    def _charge_vector(self, plan: CompiledQuery,
                       colmap: dict[str, str]) -> Stats:
        """Closed-form per-shard Stats for one plan execution.

        Shards with equal (rows, control-counter) state share one
        closed-form evaluation — in the common equal-width layout the
        whole query is costed with a single :func:`plan_stats` call.
        """
        delta = Stats()
        with self._stats_lock:
            # .get(): a column dropped while this query was in flight
            # charges from the plain encoding and must not resurrect a
            # flag entry (a recreated column starts plain, like a
            # fresh engine vector).
            flags = tuple(self._col_flags.get(colmap[col], False)
                          for col in plan.cols)
            events, final = plan.cost_events(flags)
            for col, flag in zip(plan.cols, final):
                physical = colmap[col]
                if physical in self._col_flags:
                    self._col_flags[physical] = flag
            memo: dict[tuple[int, int], tuple[Stats, int]] = {}
            for index, n_rows in enumerate(self._shard_rows):
                state = (n_rows, self._tba_offsets[index])
                costed = memo.get(state)
                if costed is None:
                    costed = plan_stats(self._spec, events, n_rows,
                                        tba_offset=state[1])
                    memo[state] = costed
                shard_delta, self._tba_offsets[index] = costed
                delta.iadd(shard_delta)
            self._ledger.iadd(delta)
        return delta

    # ------------------------------------------------------------------
    # reference backend
    # ------------------------------------------------------------------
    def _run_batch_reference(self, pending: dict[str, dict],
                             ) -> dict[str, tuple]:
        """Engine replay: one thread-pool task per (query, shard).

        The whole fan-out holds the table read lock, so an in-place
        mutation can never land between two shards of one query."""
        futures: dict[str, list] = {}
        outputs: dict[str, tuple] = {}
        with self._table_rw.read():
            for ckey, item in pending.items():
                futures[ckey] = [
                    self._pool.submit(self._run_on_shard, shard,
                                      item["plan"], item["colmap"])
                    for shard in self._shards
                ]
            for ckey in pending:
                start = time.perf_counter()
                shard_outputs = [future.result()
                                 for future in futures[ckey]]
                elapsed = time.perf_counter() - start
                delta = Stats()
                for _, shard_delta in shard_outputs:
                    delta.iadd(shard_delta)
                if self.functional:
                    bits = np.concatenate(
                        [bits for bits, _ in shard_outputs]
                    )[: self.n_bits]
                    count = int(bits.sum())
                else:
                    bits, count = None, None
                outputs[ckey] = (bits, count, delta, elapsed)
        return outputs

    def _run_on_shard(self, shard: _Shard, plan: CompiledQuery,
                      colmap: dict[str, str]):
        with shard.lock:
            engine = shard.engine
            columns = {logical: shard.columns[physical]
                       for logical, physical in colmap.items()}
            before = engine.stats.copy()
            vec = plan.run(engine, columns, n_bits=shard.n_bits)
            bits = None
            if self.functional:
                bits = vec.logical_bits()[: shard.n_bits]
            engine.free(vec)
            delta = engine.stats.minus(before)
        return bits, delta

    # ------------------------------------------------------------------
    # result cache (dependency-indexed)
    # ------------------------------------------------------------------
    @staticmethod
    def _cache_scope(tenant: str | None, plan_key: str) -> str:
        """Tenant-scoped cache key (``\\0`` never appears in keys)."""
        return plan_key if tenant is None else \
            f"{tenant}\x00{plan_key}"

    def _cache_get(self, key: str) -> _CacheEntry | None:
        if self._cache_size <= 0:
            return None
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            return entry

    def _cache_peek(self, key: str) -> _CacheEntry | None:
        """Cache lookup without touching hit/miss counters or LRU."""
        with self._cache_lock:
            return self._cache.get(key)

    def _cache_put(self, key: str, result: QueryResult,
                   snapshot: tuple[int, dict[str, int]],
                   tenant: str | None,
                   cols: tuple[str, ...]) -> None:
        if self._cache_size <= 0:
            return
        epoch, generations = snapshot
        with self._cache_lock:
            if epoch != self._epoch:
                return  # table resized while executing: stale width
            if any(self._col_generation.get(physical, 0) != generation
                   for physical, generation in generations.items()):
                return  # a read column mutated while executing
            # Cache a private copy: the caller keeps (and may mutate)
            # the returned result object.
            entry = QueryResult(**{
                **result.__dict__,
                "payload": _payload_copy(result.payload),
                "detail": dict(result.detail),
            })
            if key in self._cache:
                self._evict_locked(key)
            self._cache[key] = _CacheEntry(entry, tenant, cols)
            for physical in cols:
                self._dep_index.setdefault(physical, set()).add(key)
            state = self._tenants.get(tenant)
            if state is not None:
                state.cached += 1
                quota = state.cache_entries
                if quota is not None and state.cached > quota:
                    # Evict the tenant's own LRU entry.
                    for candidate, held in self._cache.items():
                        if held.tenant == tenant and candidate != key:
                            self._evict_locked(candidate)
                            break
            while len(self._cache) > self._cache_size:
                self._evict_locked(next(iter(self._cache)))

    def _evict_locked(self, key: str) -> int:
        """Remove one entry + its dependency-index edges (lock held)."""
        entry = self._cache.pop(key, None)
        if entry is None:
            return 0
        for physical in entry.cols:
            keys = self._dep_index.get(physical)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._dep_index[physical]
        state = self._tenants.get(entry.tenant)
        if state is not None and state.cached > 0:
            state.cached -= 1
        return 1

    def _invalidate_columns(self, physicals) -> int:
        """Evict exactly the results whose plans read these columns.

        Bumps each column's generation (so in-flight results that read
        it cannot land in the cache) and returns the eviction count.
        Cached results over *other* columns survive — the
        dependency-aware contract."""
        with self._cache_lock:
            keys: set[str] = set()
            for physical in physicals:
                self._col_generation[physical] = \
                    self._col_generation.get(physical, 0) + 1
                keys |= self._dep_index.pop(physical, set())
            evicted = 0
            for key in keys:
                evicted += self._evict_locked(key)
            return evicted

    def _invalidate_all(self) -> int:
        """Table-wide invalidation (row appends change every width)."""
        with self._cache_lock:
            self._epoch += 1
            evicted = len(self._cache)
            self._cache.clear()
            self._dep_index.clear()
            for state in self._tenants.values():
                state.cached = 0
            return evicted

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def attach_durability(self, manager) -> None:
        """Install a :class:`~repro.service.durability.
        DurabilityManager`: every subsequent mutation barrier and
        tenant-state delta is WAL-logged before it is applied, and
        snapshots rotate the log every ``snapshot_every`` barriers.

        Requires the functional vector backend — the reference
        backend keeps its payloads inside per-shard engines and the
        counting mode has no payloads to persist."""
        if self.backend != "vector" or not self.functional:
            raise QueryError(
                "durability requires the functional vector backend")
        self._durability = manager
        if manager.bootstrap_needed():
            # A fresh generation-0 log opens with the geometry, so a
            # crash before the first snapshot recovers from the data
            # dir alone (no CLI flags to get wrong).
            manager.log({"kind": "geometry",
                         "technology": self.technology,
                         "n_bits": self.n_bits,
                         "n_shards": self.n_shards,
                         "capacity": self.capacity}, barrier=False)

    @property
    def durability(self):
        return self._durability

    def _log_wal(self, meta: dict, bits=None, *,
                 barrier: bool = True) -> None:
        if self._durability is not None:
            self._durability.log(meta, bits, barrier=barrier)

    def _log_charges_locked(self, charged: list, pending: dict,
                            outputs: dict) -> None:
        """Append one per-batch accounting record (_stats_lock held).

        Cache hits never reach here — only executed plans advance the
        tenant energy, disturb counters, column flags, TBA offsets and
        the compute ledger, and those are exactly what the record
        carries (final flag/TBA values; the ledger as one summed
        delta, Stats-allclose under float reassociation)."""
        delta = Stats()
        for ckey in pending:
            delta.iadd(outputs[ckey][2])
        flags = {
            physical: self._col_flags.get(physical, False)
            for item in pending.values()
            for physical in item["colmap"].values()
            if physical in self._col_flags}
        self._log_wal(
            {"kind": "charges", "items": charged, "flags": flags,
             "tba": list(self._tba_offsets),
             "ledger": stats_to_dict(delta)},
            barrier=False)

    def _maybe_checkpoint(self) -> None:
        """Auto-snapshot after ``snapshot_every`` barriers
        (_table_lock held — called at the end of each mutation)."""
        manager = self._durability
        if manager is not None and not manager.replaying \
                and manager.snapshot_due():
            self._checkpoint_locked()

    def checkpoint(self) -> dict:
        """Write a snapshot generation now and rotate the WAL."""
        if self._durability is None:
            raise QueryError("no durability manager attached")
        with self._table_lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> dict:
        manager = self._durability
        columns = {physical: self._store.bits(physical)
                   for physical in self._columns}
        # State capture and WAL rotation share one _stats_lock hold:
        # a concurrent per-batch charge must land entirely in the
        # snapshot or entirely in the new generation's WAL, never
        # both and never neither.
        with self._stats_lock:
            meta = self._durable_state_locked()
            generation = manager.write_snapshot(meta, columns)
        return {"generation": generation,
                "columns": len(columns), "n_bits": self.n_bits}

    def _durable_state_locked(self) -> dict:
        """JSON-safe durable state (_table_lock + _stats_lock held)."""
        return {
            "version": 1,
            "technology": self.technology,
            "n_bits": self.n_bits,
            "capacity": self.capacity,
            "n_shards": self.n_shards,
            "rows_used": self._rows_used,
            "columns": {physical: int(width) for physical, width
                        in self._columns.items()},
            "col_flags": {physical: bool(flag) for physical, flag
                          in self._col_flags.items()},
            "tba_offsets": [int(x) for x in self._tba_offsets],
            "ledger": stats_to_dict(self._ledger),
            "writeback": {
                "reads": {column: [int(x) for x in counters]
                          for column, counters
                          in self._writeback._reads.items()},
                "reads_noted": self._writeback.reads_noted,
                "rows_written": self._writeback.rows_written,
                "scrubs": self._writeback.scrubs,
                "scrub_rows": self._writeback.scrub_rows,
                "write_energy_j": self._writeback.write_energy_j,
                "scrub_energy_j": self._writeback.scrub_energy_j,
                "stats": stats_to_dict(self._writeback.stats),
            },
            "tenants": [
                {"name": state.name,
                 "quota_bits": state.quota_bits,
                 "quota_energy_nj": state.quota_energy_nj,
                 "cache_entries": state.cache_entries,
                 "max_pending": state.max_pending,
                 "columns": dict(state.columns),
                 "energy_spent_nj": state.energy_spent_nj}
                for state in self._tenants.values()
            ],
            "counters": {
                "queries_served": self.queries_served,
                "programs_run": self.programs_run,
                "mutations_applied": self.mutations_applied,
            },
        }

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate service counters and the merged engine ledger."""
        merged = Stats()
        if self.backend == "vector":
            with self._stats_lock:
                merged = self._ledger.copy()
                rows_used = self._rows_used
        else:
            rows_used = 0
            for shard in self._shards:
                with shard.lock:
                    merged.iadd(shard.engine.stats)
                    rows_used += shard.engine.allocator.rows_used
        with self._stats_lock:
            writeback = self._writeback.summary()
        return {
            "technology": self.technology,
            "backend": self.backend,
            "n_bits": self.n_bits,
            "capacity": self.capacity,
            "n_shards": self.n_shards,
            "columns": len(self._columns),
            "tenants": len(self._tenants),
            "rows_used": rows_used,
            "queries_served": self.queries_served,
            "programs_run": self.programs_run,
            "mutations_applied": self.mutations_applied,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cached_results": len(self._cache),
            "energy_total_nj": merged.total_energy_j * 1e9,
            "cycles_total": merged.total_cycles,
            "writeback": writeback,
            "executor": {
                "fuse": self.fuse,
                "workers": self.workers,
                "mode": "process" if self._shared_store
                and self.workers > 1 else "serial",
                "parallel_min_work": self._parallel_min_work,
                "matrix_pool": self._matrix_pool.stats()
                if self.backend == "vector" else None,
                "worker_pool": self._worker_pool.stats()
                if self._worker_pool is not None else None,
                "replica_reads": self.replica_reads,
                "replicas": self._replica_set.stats()
                if self._replica_set is not None else None,
            },
            "durability": self._durability.stats()
            if self._durability is not None else None,
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._durability is not None:
                self._durability.close()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            # Order matters: the replica applier reads the primary
            # store, workers map its segments — stop both before
            # unlinking the shared segments.
            if self._replica_set is not None:
                self._replica_set.close()
            if self._worker_pool is not None:
                self._worker_pool.close()
            if self._shared_store:
                self._store.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise QueryError("service is closed")

    def __enter__(self) -> "BitwiseService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
