"""Durability layer: write-ahead log, snapshots, and crash recovery.

The served table is modelled on *non-volatile* 2T-nC FeRAM — persistence
is the substrate's defining property — so the serving stack treats
durable state as a first-class guarantee rather than an accident of
process lifetime.  Three pieces cooperate:

* :class:`WriteAheadLog` — an append-only log of length-prefixed,
  CRC32-checksummed records.  Each record body is one REPB frame
  (:mod:`repro.service.wire`): compact-JSON metadata plus the mutation's
  bit payload packed 64 bits per little-endian word.  Every mutation
  barrier (``create_column`` / ``drop_column`` / ``update_column`` /
  ``write_slice`` / ``append_rows``) and tenant-state delta (quota
  config, per-batch energy/disturb charges) is logged **before** it is
  applied and before the scheduler acknowledges it.  A torn or
  corrupt tail frame (short write, bad CRC) is detected on replay and
  discarded — the log is truncated back to its last valid record.

* snapshots — one file per generation holding the full durable state:
  service geometry, packed column payloads (same word packing as the
  wire), tenant states, column complement flags, TBA offsets, the
  compute ledger and the write-back accountant.  Snapshots are written
  to a temp file, fsynced, then atomically renamed; a partial snapshot
  (crash mid-write, bad CRC) is ignored in favor of the previous
  generation.  After each snapshot the WAL rotates to a fresh
  generation and the obsolete files are retired.

* :func:`recover_service` — rebuilds a :class:`~repro.service.service.
  BitwiseService` from a data directory: load the newest valid
  snapshot, replay its WAL through the real service methods (mutation
  replay recomputes dirty rows, write-back charges and tenant energy
  deterministically — bit- and Stats-exact against an uninterrupted
  run), then attach the manager so new traffic keeps logging.

Replay exactness
----------------
Mutations are logged as *logical operations* with their input bits;
replaying them through the service reproduces every derived charge
(dirty-row diffs, TBA-write energy, tenant quota spend, cache
invalidation) because the cost model is closed-form and deterministic.
Query execution also advances durable accounting state (compute
ledger, column flags, TBA offsets, read-disturb counters, tenant
energy), so each executed (cache-miss) batch appends one compact
``charges`` record; cache hits charge nothing and log nothing, keeping
steady-state WAL traffic negligible.

The :class:`FaultInjector` arms deterministic faults at named points
(``wal.fsync``, ``wal.torn``, ``snapshot.write``, ``batch.exec``,
``batch.delay``, ``exclusive.exec``, ``exclusive.delay``,
``wal.append``) for chaos tests, configurable from the CLI
(``--inject``) or the ``REPRO_FAULTS`` environment variable.
"""

from __future__ import annotations

import os
import re
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.arch.commands import CommandType, Stats
from repro.errors import ProtocolError, QueryError, ReproError
from repro.service.wire import (
    HEADER_SIZE,
    KIND_REQUEST,
    KIND_RESPONSE,
    decode_frame,
    decode_header,
    encode_frame,
)

__all__ = [
    "DurabilityManager", "FaultInjector", "InjectedFault",
    "WriteAheadLog", "read_wal", "read_snapshot", "write_snapshot",
    "recover_service", "stats_to_dict", "stats_from_dict",
]

#: per-record prefix: body length (u32 LE) + CRC32 of the body (u32 LE)
_RECORD = struct.Struct("<II")
#: WAL file preamble — distinguishes a log from arbitrary bytes
WAL_FILE_MAGIC = b"REPWAL01"
#: snapshot preamble + <crc32, body_len> header over the frame body
SNAP_FILE_MAGIC = b"REPSNAP1"
_SNAP_HEAD = struct.Struct("<IQ")

_GEN_RE = re.compile(r"(?:snap|wal)-(\d{8})\.(?:snap|log)$")

_SYNC_MODES = ("always", "batch", "none")


# ----------------------------------------------------------------------
# Stats (de)serialization — exact: JSON floats round-trip via repr
# ----------------------------------------------------------------------
def stats_to_dict(stats: Stats) -> dict:
    """JSON-safe, lossless encoding of a :class:`Stats` ledger."""
    return {
        "energy_j": {str(k): float(v)
                     for k, v in stats.energy_j.items()},
        "cycles": {str(k): int(v) for k, v in stats.cycles.items()},
        "counts": {ctype.value: int(n)
                   for ctype, n in stats.counts.items()},
        "staging_aaps": int(stats.staging_aaps),
        "relocation_acps": int(stats.relocation_acps),
        "control_rewrites": int(stats.control_rewrites),
    }


def stats_from_dict(data: dict) -> Stats:
    """Inverse of :func:`stats_to_dict`."""
    stats = Stats()
    stats.energy_j = {str(k): float(v)
                      for k, v in data["energy_j"].items()}
    stats.cycles = {str(k): int(v) for k, v in data["cycles"].items()}
    stats.counts = {CommandType(k): int(v)
                    for k, v in data["counts"].items()}
    stats.staging_aaps = int(data["staging_aaps"])
    stats.relocation_acps = int(data["relocation_acps"])
    stats.control_rewrites = int(data["control_rewrites"])
    return stats


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
class InjectedFault(ReproError):
    """An armed :class:`FaultInjector` point fired.

    ``crash=True`` marks faults that simulate the process dying
    mid-write (torn WAL tail, partial snapshot): cleanup/rollback is
    intentionally skipped, exactly as a real crash would leave things.
    """

    def __init__(self, message: str, *, point: str = "",
                 crash: bool = False) -> None:
        super().__init__(message)
        self.point = point
        self.crash = crash


@dataclass
class _Arm:
    after: int = 0          #: skip this many firings first
    times: int = 1          #: then fire this many times (-1 = forever)
    param: float | None = None  #: point-specific (delay s, torn bytes)


class FaultInjector:
    """Deterministic, point-addressed fault arming for chaos tests.

    Known points::

        wal.append       raise before a WAL record is written
        wal.fsync        raise instead of the WAL fsync
        wal.torn         write a truncated record, then "crash"
        snapshot.write   write half the snapshot temp file, then "crash"
        batch.exec       raise inside a scheduler query batch
        batch.delay      sleep ``param`` seconds inside a batch
        exclusive.exec   raise inside a mutation barrier op
        exclusive.delay  sleep ``param`` seconds inside a barrier op

    Spec strings (CLI ``--inject`` / env ``REPRO_FAULTS``) are comma-
    separated entries ``point[:key=value]*`` with keys ``after``,
    ``times`` and ``param``, e.g. ``"wal.fsync:after=3"`` or
    ``"batch.delay:param=0.05:times=2,wal.torn:after=10"``.
    """

    POINTS = ("wal.append", "wal.fsync", "wal.torn", "snapshot.write",
              "batch.exec", "batch.delay", "exclusive.exec",
              "exclusive.delay")

    def __init__(self) -> None:
        self._arms: dict[str, _Arm] = {}
        self._lock = threading.Lock()
        #: point -> times it actually fired
        self.fired: dict[str, int] = {}

    def arm(self, point: str, *, after: int = 0, times: int = 1,
            param: float | None = None) -> "FaultInjector":
        if point not in self.POINTS:
            raise QueryError(
                f"unknown fault point {point!r} "
                f"(known: {', '.join(self.POINTS)})")
        with self._lock:
            self._arms[point] = _Arm(int(after), int(times), param)
        return self

    def disarm(self, point: str | None = None) -> None:
        with self._lock:
            if point is None:
                self._arms.clear()
            else:
                self._arms.pop(point, None)

    def fires(self, point: str) -> _Arm | None:
        """Consume one firing of ``point`` if armed and due."""
        with self._lock:
            arm = self._arms.get(point)
            if arm is None:
                return None
            if arm.after > 0:
                arm.after -= 1
                return None
            if arm.times == 0:
                return None
            if arm.times > 0:
                arm.times -= 1
            self.fired[point] = self.fired.get(point, 0) + 1
            return arm

    def check(self, point: str, *, crash: bool = False) -> None:
        """Raise :class:`InjectedFault` if ``point`` fires."""
        if self.fires(point) is not None:
            raise InjectedFault(f"injected fault at {point}",
                                point=point, crash=crash)

    def delay(self, point: str) -> None:
        """Sleep the armed duration if ``point`` fires."""
        arm = self.fires(point)
        if arm is not None:
            time.sleep(arm.param if arm.param is not None else 0.05)

    @classmethod
    def from_spec(cls, spec: str | None) -> "FaultInjector | None":
        """Parse ``point[:key=val]*[,...]``; None/empty -> None."""
        if not spec:
            return None
        injector = cls()
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            point, *options = entry.split(":")
            kwargs: dict = {}
            for option in options:
                key, _, value = option.partition("=")
                key = key.strip()
                if key not in ("after", "times", "param"):
                    raise QueryError(
                        f"unknown fault option {key!r} in {entry!r}")
                kwargs[key] = float(value) if key == "param" \
                    else int(value)
            injector.arm(point.strip(), **kwargs)
        return injector


# ----------------------------------------------------------------------
# write-ahead log
# ----------------------------------------------------------------------
def read_wal(path) -> tuple[list[tuple[dict, object]], int, bool]:
    """Decode a WAL file -> ``(records, valid_bytes, torn_tail)``.

    ``records`` is a list of ``(meta, bits)`` in append order; replay
    stops at the first short/corrupt record — everything from there on
    is untrusted (a crash mid-append) and reported via ``torn_tail``.
    A missing file is an empty log.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0, False
    if not data:
        return [], 0, False
    if not data.startswith(WAL_FILE_MAGIC):
        return [], 0, True  # not a log we wrote: treat as all-torn
    records: list[tuple[dict, object]] = []
    offset = len(WAL_FILE_MAGIC)
    while offset < len(data):
        if offset + _RECORD.size > len(data):
            return records, offset, True
        body_len, crc = _RECORD.unpack_from(data, offset)
        body = data[offset + _RECORD.size:
                    offset + _RECORD.size + body_len]
        if len(body) < body_len or zlib.crc32(body) != crc:
            return records, offset, True
        try:
            header = decode_header(body[:HEADER_SIZE])
            meta_end = HEADER_SIZE + header.meta_len
            meta, bits = decode_frame(
                header, body[HEADER_SIZE:meta_end], body[meta_end:])
        except ProtocolError:
            return records, offset, True
        records.append((meta, bits))
        offset += _RECORD.size + body_len
    return records, offset, False


class WriteAheadLog:
    """Append-only, checksummed record log (one file, one generation).

    ``sync`` policy: ``"always"`` fsyncs every commit; ``"batch"``
    (default) fsyncs mutation barriers but only flushes per-batch
    accounting records; ``"none"`` never fsyncs (tests/benchmarks).
    A barrier append may pass ``defer_sync=True`` to skip its own
    fsync — the scheduler group-commits a round of mutations under
    one :meth:`flush` that way, acknowledging none of them before
    the whole group is on disk.  Record syncs use ``fdatasync``
    where available (POSIX guarantees the size metadata needed to
    retrieve appended data is flushed with it).
    Appends are single ``os.write`` calls of the whole record, so a
    crash can only tear the *tail* record — exactly what the CRC scan
    discards on recovery.  A failed append/fsync is rolled back by
    truncating to the pre-record offset unless the failure simulates a
    crash (:class:`InjectedFault` with ``crash=True``).
    """

    def __init__(self, path, *, sync: str = "batch",
                 injector: FaultInjector | None = None) -> None:
        if sync not in _SYNC_MODES:
            raise QueryError(
                f"unknown WAL sync mode {sync!r} "
                f"(expected one of {_SYNC_MODES})")
        self.path = Path(path)
        self.sync = sync
        self.injector = injector
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        _, valid, _ = read_wal(self.path)
        self._fd = os.open(self.path,
                           os.O_RDWR | os.O_CREAT, 0o644)
        if valid == 0:
            os.ftruncate(self._fd, 0)
            os.write(self._fd, WAL_FILE_MAGIC)
            self._offset = len(WAL_FILE_MAGIC)
            if sync != "none":
                os.fsync(self._fd)
        else:
            # Discard any torn tail left by a previous crash.
            os.ftruncate(self._fd, valid)
            os.lseek(self._fd, valid, os.SEEK_SET)
            self._offset = valid
        #: everything up to this offset is known to be on disk; a
        #: flush racing concurrent appends compares offsets instead
        #: of a dirty flag, so it can never mark unsynced bytes clean
        self._synced = self._offset
        self._sync_lock = threading.Lock()
        self._closed = False

    @property
    def offset(self) -> int:
        return self._offset

    def append(self, meta: dict, bits=None, *,
               barrier: bool = True, defer_sync: bool = False) -> None:
        """Append one record; fsync per the sync policy.

        ``defer_sync`` suppresses the ``"batch"``-mode barrier fsync
        (group commit — the caller flushes once for the whole group);
        ``"always"`` still syncs every record.
        """
        body = encode_frame(KIND_REQUEST, meta, bits)
        blob = _RECORD.pack(len(body), zlib.crc32(body)) + body
        injector = self.injector
        if injector is not None:
            injector.check("wal.append")
            arm = injector.fires("wal.torn")
            if arm is not None:
                # Simulate a crash mid-append: a prefix of the record
                # reaches the disk, then the process "dies" — no
                # rollback, the torn tail stays for recovery to find.
                keep = int(arm.param) if arm.param else \
                    max(1, len(blob) // 2)
                os.write(self._fd, blob[:keep])
                self._offset += keep
                raise InjectedFault("injected torn WAL tail",
                                    point="wal.torn", crash=True)
        os.write(self._fd, blob)
        self._offset += len(blob)
        self.records_appended += 1
        self.bytes_appended += len(blob)
        if self.sync == "always" or (barrier and self.sync == "batch"
                                     and not defer_sync):
            self._fsync()

    def _fsync(self) -> None:
        if self.injector is not None:
            self.injector.check("wal.fsync")
        with self._sync_lock:
            if self._closed:
                return  # close() already synced everything it had
            target = self._offset
            if target <= self._synced:
                return
            # fdatasync: POSIX flushes the size metadata needed to
            # read the appended records back, skips the rest (mtime)
            getattr(os, "fdatasync", os.fsync)(self._fd)
            self.fsyncs += 1
            if target > self._synced:
                self._synced = target

    def flush(self) -> None:
        """Force outstanding records to disk (unless sync="none").

        Safe to call from a background committer while other threads
        keep appending: the sync covers at least every record written
        before the call, and anything it misses stays marked unsynced
        for the next flush."""
        if self.sync != "none" and not self._closed:
            self._fsync()

    def truncate_to(self, offset: int) -> None:
        """Roll back to a pre-append offset (failed commit)."""
        os.ftruncate(self._fd, offset)
        os.lseek(self._fd, offset, os.SEEK_SET)
        self._offset = offset
        if self._synced > offset:
            self._synced = offset

    def close(self) -> None:
        with self._sync_lock:
            if self._closed:
                return
            self._closed = True
            try:
                if self.sync != "none" and self._offset > self._synced:
                    os.fsync(self._fd)
                    self._synced = self._offset
            except OSError:
                pass
            os.close(self._fd)


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
def write_snapshot(path, meta: dict, columns: dict, *,
                   injector: FaultInjector | None = None) -> None:
    """Atomically write one snapshot generation.

    The body is a sequence of REPB frames — a state frame followed by
    one frame per column (payload packed 64 bits/word) — prefixed by a
    magic + CRC32 + length header.  Written to ``<path>.tmp``, fsynced,
    then renamed into place (directory fsynced), so a crash can never
    leave a *partial* file under the final name; a corrupt body is
    caught by the CRC on load either way.
    """
    path = Path(path)
    frames = [encode_frame(KIND_RESPONSE, {"snapshot": meta})]
    for name in sorted(columns):
        frames.append(encode_frame(KIND_RESPONSE, {"column": name},
                                   columns[name]))
    body = b"".join(frames)
    blob = SNAP_FILE_MAGIC + \
        _SNAP_HEAD.pack(zlib.crc32(body), len(body)) + body
    tmp = path.with_name(path.name + ".tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        if injector is not None and \
                injector.fires("snapshot.write") is not None:
            os.write(fd, blob[: max(1, len(blob) // 2)])
            raise InjectedFault("injected partial snapshot",
                                point="snapshot.write", crash=True)
        os.write(fd, blob)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_snapshot(path) -> tuple[dict, dict]:
    """Load a snapshot -> ``(state_meta, {column: bits})``.

    Raises :class:`ProtocolError` on a partial or corrupt file — the
    caller falls back to the previous generation.
    """
    path = Path(path)
    data = path.read_bytes()
    head_end = len(SNAP_FILE_MAGIC) + _SNAP_HEAD.size
    if len(data) < head_end or not data.startswith(SNAP_FILE_MAGIC):
        raise ProtocolError(f"{path.name}: not a snapshot file")
    crc, body_len = _SNAP_HEAD.unpack_from(data, len(SNAP_FILE_MAGIC))
    body = data[head_end:head_end + body_len]
    if len(body) != body_len or zlib.crc32(body) != crc:
        raise ProtocolError(f"{path.name}: partial or corrupt snapshot")
    meta: dict | None = None
    columns: dict[str, np.ndarray] = {}
    offset = 0
    while offset < len(body):
        header = decode_header(body[offset:offset + HEADER_SIZE])
        meta_end = offset + HEADER_SIZE + header.meta_len
        frame_meta, bits = decode_frame(
            header, body[offset + HEADER_SIZE:meta_end],
            body[meta_end:meta_end + header.payload_bytes])
        if "snapshot" in frame_meta:
            meta = frame_meta["snapshot"]
        elif "column" in frame_meta:
            columns[frame_meta["column"]] = bits
        offset = meta_end + header.payload_bytes
    if meta is None:
        raise ProtocolError(f"{path.name}: snapshot has no state frame")
    return meta, columns


# ----------------------------------------------------------------------
# the manager: generations, rotation, logging
# ----------------------------------------------------------------------
class DurabilityManager:
    """Owns one data directory: WAL generations plus snapshots.

    Layout: ``snap-<gen>.snap`` is the base state of generation
    ``gen``; ``wal-<gen>.log`` holds every record since.  Generation 0
    has no snapshot (empty base).  A snapshot advances the generation:
    write ``snap-<gen+1>``, rotate to a fresh ``wal-<gen+1>``, retire
    everything older than the *previous* generation (kept as a
    last-resort fallback against on-disk corruption of the newest
    snapshot).
    """

    def __init__(self, data_dir, *, snapshot_every: int | None = 256,
                 sync: str = "batch",
                 injector: FaultInjector | None = None) -> None:
        if sync not in _SYNC_MODES:
            raise QueryError(
                f"unknown WAL sync mode {sync!r} "
                f"(expected one of {_SYNC_MODES})")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self.sync = sync
        self.injector = injector
        #: True while recovery replays the WAL (suppresses re-logging)
        self.replaying = False
        self.generation: int = 0
        self._wal: WriteAheadLog | None = None
        self.snapshots_written = 0
        self.mutations_since_snapshot = 0
        self.last_recovery: dict | None = None
        #: open group-commit count: while positive, barrier records
        #: defer their fsync to a group's flush (a counter, not a
        #: flag — a round's background flush may still be pending
        #: when the next round opens its own group)
        self._group = 0
        self._lock = threading.RLock()

    # -- paths ---------------------------------------------------------
    def snap_path(self, generation: int) -> Path:
        return self.data_dir / f"snap-{generation:08d}.snap"

    def wal_path(self, generation: int) -> Path:
        return self.data_dir / f"wal-{generation:08d}.log"

    def generations(self) -> list[int]:
        """Generation numbers present in the data dir (ascending)."""
        found = set()
        for entry in self.data_dir.iterdir():
            match = _GEN_RE.match(entry.name)
            if match:
                found.add(int(match.group(1)))
        return sorted(found)

    # -- recovery ------------------------------------------------------
    def load_base(self) -> tuple[int, dict | None, dict, list, bool]:
        """Pick the newest valid generation and read its WAL.

        Returns ``(generation, snapshot_meta_or_None, columns,
        wal_records, torn_tail)``.  A partial/corrupt snapshot is
        skipped in favor of the previous generation; generation 0
        needs no snapshot (empty base).
        """
        for generation in sorted(self.generations(), reverse=True) \
                or [0]:
            snap = self.snap_path(generation)
            if snap.exists():
                try:
                    meta, columns = read_snapshot(snap)
                except (ProtocolError, OSError):
                    continue  # partial snapshot: previous generation
            elif generation == 0:
                meta, columns = None, {}
            else:
                continue  # wal without snapshot: rotation crash relic
            records, _, torn = read_wal(self.wal_path(generation))
            return generation, meta, columns, records, torn
        return 0, None, {}, [], False

    def open(self, generation: int) -> None:
        """Open (or create) the WAL of ``generation`` for appending;
        a torn tail from a previous crash is truncated away."""
        with self._lock:
            if self._wal is not None:
                self._wal.close()
            self.generation = int(generation)
            self._wal = WriteAheadLog(self.wal_path(self.generation),
                                      sync=self.sync,
                                      injector=self.injector)

    # -- logging -------------------------------------------------------
    def log(self, meta: dict, bits=None, *, barrier: bool = True,
            ) -> None:
        """Append one record ahead of applying its state change.

        A clean append/fsync failure rolls the file back to the
        pre-record offset (the op will be rejected, so its record must
        not survive for replay); a ``crash=True`` injected fault keeps
        the torn bytes, exactly like a real mid-write crash.
        """
        if self.replaying or self._wal is None:
            return
        with self._lock:
            start = self._wal.offset
            try:
                self._wal.append(meta, bits, barrier=barrier,
                                 defer_sync=self._group > 0)
            except InjectedFault as exc:
                if not exc.crash:
                    self._wal.truncate_to(start)
                raise
            except OSError:
                try:
                    self._wal.truncate_to(start)
                except OSError:
                    pass
                raise
        if barrier:
            self.mutations_since_snapshot += 1

    # -- group commit --------------------------------------------------
    def begin_group(self) -> None:
        """Defer barrier fsyncs until :meth:`commit_group`.

        Group commit for one scheduler round of mutations: every
        record is still written *before* its op applies (the WAL-
        before-apply invariant holds record by record), but the round
        shares a single fsync — no op may be acknowledged until
        :meth:`commit_group` returns."""
        with self._lock:
            self._group += 1

    def commit_group(self) -> None:
        """Flush one deferred group to disk (see commit_groups)."""
        self.commit_groups(1)

    def commit_groups(self, n: int = 1) -> None:
        """Flush ``n`` deferred groups under a single fsync.

        Raises if the sync fails — the caller must then withhold the
        acknowledgment of *every* op in those groups, since none of
        them is durable.  The fsync itself runs outside the manager
        lock, so appends from later rounds (which open their own
        groups) proceed while this flush is in flight; the flush
        covers at least every record appended before the call."""
        with self._lock:
            self._group = max(0, self._group - n)
            wal = self._wal
        if wal is not None:
            wal.flush()

    def bootstrap_needed(self) -> bool:
        """True for a brand-new generation-0 log: the first record
        must describe the service geometry, so a crash before the
        first snapshot still recovers with just the data dir."""
        return self.generation == 0 and self._wal is not None \
            and self._wal.offset == len(WAL_FILE_MAGIC)

    def snapshot_due(self) -> bool:
        return bool(self.snapshot_every) and \
            self.mutations_since_snapshot >= self.snapshot_every

    def write_snapshot(self, meta: dict, columns: dict) -> int:
        """Write the next generation's snapshot and rotate the WAL.

        Caller must hand a consistent state (the service holds its
        table + stats locks).  Returns the new generation."""
        with self._lock:
            generation = self.generation + 1
            write_snapshot(self.snap_path(generation), meta, columns,
                           injector=self.injector)
            old = self._wal
            self._wal = WriteAheadLog(self.wal_path(generation),
                                      sync=self.sync,
                                      injector=self.injector)
            self.generation = generation
            if old is not None:
                old.close()
            self.snapshots_written += 1
            self.mutations_since_snapshot = 0
            self._retire(keep={generation, generation - 1})
            return generation

    def _retire(self, keep: set[int]) -> None:
        for generation in self.generations():
            if generation in keep:
                continue
            for path in (self.snap_path(generation),
                         self.wal_path(generation)):
                try:
                    path.unlink()
                except OSError:
                    pass

    # -- lifecycle / introspection -------------------------------------
    def flush(self) -> None:
        with self._lock:
            if self._wal is not None:
                self._wal.flush()

    def close(self) -> None:
        with self._lock:
            if self._wal is not None:
                self._wal.close()
                self._wal = None

    def stats(self) -> dict:
        wal = self._wal
        return {
            "data_dir": str(self.data_dir),
            "generation": self.generation,
            "sync": self.sync,
            "snapshot_every": self.snapshot_every,
            "snapshots_written": self.snapshots_written,
            "mutations_since_snapshot": self.mutations_since_snapshot,
            "wal_records": wal.records_appended if wal else 0,
            "wal_bytes": wal.bytes_appended if wal else 0,
            "wal_fsyncs": wal.fsyncs if wal else 0,
            "last_recovery": self.last_recovery,
        }


# ----------------------------------------------------------------------
# service state restore + WAL replay
# ----------------------------------------------------------------------
def _restore_state(service, meta: dict, columns: dict) -> None:
    """Install snapshot state directly (no re-charging: the ledgers
    come from the snapshot, not from replaying the initial loads)."""
    from repro.service.tenancy import TenantState

    for physical in sorted(columns):
        service._store.add(physical, columns[physical])
    service._columns = {physical: int(width)
                        for physical, width in meta["columns"].items()}
    service._col_flags = {physical: bool(flag)
                          for physical, flag
                          in meta["col_flags"].items()}
    service._tba_offsets = [int(x) for x in meta["tba_offsets"]]
    service._rows_used = int(meta["rows_used"])
    service._ledger = stats_from_dict(meta["ledger"])
    writeback = meta["writeback"]
    accountant = service._writeback
    accountant._reads = {column: [int(x) for x in counters]
                         for column, counters
                         in writeback["reads"].items()}
    accountant.reads_noted = int(writeback["reads_noted"])
    accountant.rows_written = int(writeback["rows_written"])
    accountant.scrubs = int(writeback["scrubs"])
    accountant.scrub_rows = int(writeback["scrub_rows"])
    accountant.write_energy_j = float(writeback["write_energy_j"])
    accountant.scrub_energy_j = float(writeback["scrub_energy_j"])
    accountant.stats = stats_from_dict(writeback["stats"])
    tenants: dict = {}
    for record in meta["tenants"]:
        state = TenantState(
            record["name"],
            quota_bits=record["quota_bits"],
            quota_energy_nj=record["quota_energy_nj"],
            cache_entries=record["cache_entries"],
            max_pending=record["max_pending"])
        state.columns = dict(record["columns"])
        state.energy_spent_nj = float(record["energy_spent_nj"])
        tenants[state.name] = state
    if None not in tenants:
        tenants[None] = TenantState(None)
    service._tenants = tenants
    counters = meta.get("counters", {})
    service.queries_served = int(counters.get("queries_served", 0))
    service.programs_run = int(counters.get("programs_run", 0))
    service.mutations_applied = int(
        counters.get("mutations_applied", 0))


def _apply_charges(service, meta: dict) -> None:
    """Replay one per-batch accounting record.

    Per-tenant energy charges and per-column disturb reads re-run the
    exact live operations (same float ops in the same per-tenant
    order); flags/TBA/ledger land as the logged post-batch values."""
    with service._stats_lock:
        for item in meta["items"]:
            for physical in item["cols"]:
                service._writeback.note_read(physical)
            service.tenant_state(item["tenant"]).charge_energy(
                item["energy_j"])
        for physical, flag in meta["flags"].items():
            if physical in service._col_flags:
                service._col_flags[physical] = bool(flag)
        service._tba_offsets[:] = [int(x) for x in meta["tba"]]
        service._ledger.iadd(stats_from_dict(meta["ledger"]))


def _apply_record(service, meta: dict, bits) -> None:
    """Replay one WAL record through the real service methods."""
    kind = meta.get("kind")
    tenant = meta.get("tenant")
    if kind == "create":
        service.create_column(meta["name"], bits, tenant=tenant)
    elif kind == "drop":
        service.drop_column(meta["name"], tenant=tenant)
    elif kind == "update":
        service.update_column(meta["name"], bits, tenant=tenant)
    elif kind == "write_slice":
        service.write_slice(meta["name"], int(meta["offset"]), bits,
                            tenant=tenant)
    elif kind == "append":
        names = meta.get("names") or []
        segments = bits if isinstance(bits, list) else \
            ([bits] if bits is not None else [])
        values = dict(zip(names, segments))
        service.append_rows(values or None, int(meta["n"]),
                            tenant=tenant)
    elif kind == "tenant":
        service.register_tenant(
            meta["name"],
            quota_bits=meta.get("quota_bits"),
            quota_energy_nj=meta.get("quota_energy_nj"),
            cache_entries=meta.get("cache_entries"),
            max_pending=meta.get("max_pending"))
    elif kind == "charges":
        _apply_charges(service, meta)
    elif kind == "geometry":
        pass  # consumed before the service was built
    else:
        raise ProtocolError(f"unknown WAL record kind {kind!r}")


def recover_service(data_dir, *, technology: str = "feram-2tnc",
                    n_bits: int | None = None, n_shards: int = 4,
                    capacity: int | None = None,
                    snapshot_every: int | None = 256,
                    sync: str = "batch",
                    injector: FaultInjector | None = None,
                    **service_kwargs):
    """Rebuild a durable :class:`BitwiseService` from ``data_dir``.

    With existing state the snapshot's geometry wins (``technology`` /
    ``n_bits`` / ``n_shards`` / ``capacity`` are the fresh-directory
    defaults); extra keywords (``cache_size``, ``fuse``, ``workers``,
    ...) configure the new process either way.  The WAL replays
    through the real service methods — recomputing every derived
    charge deterministically — then the manager attaches so new
    traffic keeps logging.  Requires the functional vector backend
    (the default spec of the stored technology).
    """
    from repro.service.service import BitwiseService

    start = time.perf_counter()
    manager = DurabilityManager(data_dir, snapshot_every=snapshot_every,
                                sync=sync, injector=injector)
    generation, meta, columns, records, torn = manager.load_base()
    if meta is not None:
        service = BitwiseService(
            meta["technology"], n_bits=int(meta["n_bits"]),
            n_shards=int(meta["n_shards"]),
            capacity=int(meta["capacity"]),
            functional=True, backend="vector", **service_kwargs)
        _restore_state(service, meta, columns)
    else:
        # Generation 0 has no snapshot; its first WAL record carries
        # the geometry the service was created with.
        if records and records[0][0].get("kind") == "geometry":
            geometry = records[0][0]
            technology = geometry["technology"]
            n_bits = int(geometry["n_bits"])
            n_shards = int(geometry["n_shards"])
            capacity = int(geometry["capacity"])
        if n_bits is None:
            raise QueryError(
                "fresh data dir: recover_service needs n_bits=")
        service = BitwiseService(
            technology, n_bits=n_bits, n_shards=n_shards,
            capacity=capacity, functional=True, backend="vector",
            **service_kwargs)
    manager.replaying = True
    try:
        for record_meta, bits in records:
            _apply_record(service, record_meta, bits)
    finally:
        manager.replaying = False
    manager.open(generation)
    service.attach_durability(manager)
    manager.last_recovery = {
        "generation": generation,
        "snapshot": meta is not None,
        "records_replayed": len(records),
        "torn_tail_discarded": bool(torn),
        "elapsed_s": time.perf_counter() - start,
    }
    return service
