"""Multi-process shard workers over a shared-memory column store.

Three cooperating pieces turn the single-process vector backend into a
scatter/gather coordinator with true multi-core execution:

* :class:`SharedColumnStore` — a :class:`~repro.service.columnstore.
  ColumnStore` whose packed ``(n_shards, words)`` uint64 matrices live
  in ``multiprocessing.shared_memory`` segments.  Worker processes map
  the same physical pages, so scattering a query ships **no column
  data** — only segment names.  Mutations write the dirty-word diff in
  place (no copy-on-write rebind) and bump a per-column generation;
  structural changes (add/drop/resize) bump a structure generation.
  Each mutator returns a compact *event* describing exactly what
  changed, which the service forwards to read replicas.

* :class:`WorkerPool` — a pool of pinned worker processes (spawn
  context; the coordinator has threads, fork is unsafe).  Each worker
  owns a fixed contiguous block of matrix rows (= shards).  A job ships
  only ``(plan id, bytecode spec on first sight, column segment names,
  row span, output segment names)``; the worker executes the fused
  :class:`~repro.arch.expr.VectorProgram` locally over its row block,
  writes result words into shared output segments, and returns only
  per-shard popcounts over the pipe.  Plan compilation, caches, Stats
  accounting, durability and tenancy never leave the coordinator.
  A worker that dies mid-batch (crash, ``kill -9``) or hangs past the
  timeout is respawned and its job replayed — shared column segments
  are never written by workers, so replay is bit-exact.

* :class:`ReplicaStore` / :class:`ReplicaSet` — N read replicas, each
  a full shared-memory copy of the store kept current by a single
  applier thread draining the mutation-event stream from a bounded
  queue (the bound is the staleness limit: a mutator blocks rather
  than let replicas fall further behind).  Reads route to a replica
  only when its structure/mask generations match the primary and every
  referenced column satisfies the caller's generation fence — the
  mutating tenant's fence is its last-write generation, giving
  read-your-writes; other tenants read with bounded staleness.

Shared-memory lifecycle: the coordinator exclusively creates and
unlinks segments.  Workers only ever attach (never unlink, never
unregister — the resource tracker is shared with the coordinator), so
a dying worker can never take pages the coordinator still serves.
Dropped columns unlink their ``/dev/shm`` entry immediately but
retire the mapping to a graveyard
closed at :meth:`SharedColumnStore.close` — in-flight snapshots may
still read the pages until then.
"""

from __future__ import annotations

import itertools
import os
import signal
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.errors import QueryError
from repro.service.columnstore import ColumnStore, MatrixPool, \
    popcount_words

__all__ = ["SharedColumnStore", "WorkerPool", "ReplicaStore",
           "ReplicaSet"]

#: distinguishes this service's segments in /dev/shm (tests assert no
#: ``repb*`` entries leak past close)
_SEGMENT_PREFIX = "repb"
_STORE_SEQ = itertools.count()


def _close_quietly(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except (BufferError, OSError):  # pragma: no cover - defensive
        pass


class _RWLock:
    """Writer-preferring readers/writer lock (replica view guard)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


# ----------------------------------------------------------------------
# shared-memory column store
# ----------------------------------------------------------------------
class SharedColumnStore(ColumnStore):
    """A :class:`ColumnStore` backed by shared-memory segments.

    Semantics differ from the base class in exactly one way: ``set``
    writes the dirty words **in place** instead of rebinding to a fresh
    matrix, so the store is single-writer / snapshot-unsafe on its own.
    The service compensates by holding its table readers/writer lock:
    queries hold the read side across execution, mutators the write
    side across the diff application — the same barrier semantics the
    scheduler already enforces per tenant.

    Mutators return replica events (see :class:`ReplicaSet`); the
    caller must publish them **after** releasing the table write lock,
    or a full replica queue deadlocks against the applier.
    """

    def __init__(self, n_bits: int, n_shards: int, *,
                 capacity: int | None = None) -> None:
        # Subclass state first: the base initializer calls resize().
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._mask_shm: shared_memory.SharedMemory | None = None
        self._mask_matrix: np.ndarray | None = None
        #: per-column write generation (replica fencing)
        self.generations: dict[str, int] = {}
        #: bumped on resize (mask/width changes)
        self.mask_generation = 0
        #: bumped on add/drop (segment-set changes)
        self.struct_generation = 0
        self._retired: list[shared_memory.SharedMemory] = []
        self._seg_seq = 0
        self._prefix = \
            f"{_SEGMENT_PREFIX}{os.getpid()}x{next(_STORE_SEQ)}"
        self._closed = False
        super().__init__(n_bits, n_shards, capacity=capacity)

    # -- segment plumbing ----------------------------------------------
    def _new_segment(self, tag: str) -> tuple[
            shared_memory.SharedMemory, np.ndarray]:
        name = f"{self._prefix}{tag}{self._seg_seq}"
        self._seg_seq += 1
        size = int(np.prod(self.shape)) * 8
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=size)
        view = np.ndarray(self.shape, dtype=np.uint64, buffer=shm.buf)
        view.fill(0)
        return shm, view

    def segment_name(self, name: str) -> str:
        return self._segments[name].name

    @property
    def mask_segment(self) -> str | None:
        """Mask segment name for workers (None when fully valid)."""
        if self._full or self._mask_shm is None:
            return None
        return self._mask_shm.name

    # -- lifecycle ------------------------------------------------------
    def resize(self, n_bits: int):
        super().resize(n_bits)
        if self._mask_shm is None:
            self._mask_shm, self._mask_matrix = self._new_segment("m")
        np.copyto(self._mask_matrix, self._mask)
        self._mask = self._mask_matrix  # live shm-backed mask view
        self.mask_generation += 1
        return ("resize", self.mask_generation, int(n_bits))

    def add(self, name: str, bits: np.ndarray):
        if name in self._segments:
            raise QueryError(f"column {name!r} already exists")
        packed = self._pack(bits)
        shm, view = self._new_segment("c")
        np.copyto(view, packed)
        self._segments[name] = shm
        self._matrices[name] = view
        self.generations[name] = 1
        self.struct_generation += 1
        return ("add", name, self.struct_generation)

    def set(self, name: str, bits: np.ndarray):
        """Write the dirty-word diff in place; returns the replica
        event ``("set", name, generation, word_indices, words)``."""
        view = self._matrices.get(name)
        if view is None:
            raise QueryError(f"no column {name!r}")
        flat_old = view.reshape(-1)
        flat_new = self._pack(bits).reshape(-1)
        dirty = np.flatnonzero(flat_old != flat_new)
        values = flat_new[dirty]
        flat_old[dirty] = values
        gen = self.generations.get(name, 0) + 1
        self.generations[name] = gen
        return ("set", name, gen, dirty, values)

    def drop(self, name: str):
        shm = self._segments.pop(name, None)
        if shm is None:
            raise QueryError(f"no column {name!r}")
        del self._matrices[name]
        self.generations.pop(name, None)
        # Unlink now (the /dev/shm entry disappears) but keep the
        # mapping alive until close(): snapshots taken before the drop
        # may still read these pages.
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._retired.append(shm)
        self.struct_generation += 1
        return ("drop", name, self.struct_generation, shm.name)

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._matrices.clear()
        self._mask_matrix = None
        self._mask = None
        for shm in self._segments.values():
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            _close_quietly(shm)
        self._segments.clear()
        if self._mask_shm is not None:
            try:
                self._mask_shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            _close_quietly(self._mask_shm)
            self._mask_shm = None
        for shm in self._retired:
            _close_quietly(shm)
        self._retired.clear()


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _attach(cache: dict, name: str,
            shape: tuple[int, int]) -> np.ndarray:
    entry = cache.get(name)
    if entry is None:
        # Attaching re-registers the name with the resource tracker
        # shared with the coordinator (spawn children inherit its fd);
        # the registration is a set-add, so it is idempotent and the
        # coordinator's unlink still unregisters exactly once.  A
        # worker must never unregister: it would erase the
        # coordinator's entry in the shared tracker.
        shm = shared_memory.SharedMemory(name=name)
        view = np.ndarray(shape, dtype=np.uint64, buffer=shm.buf)
        cache[name] = entry = (shm, view)
    return entry[1]


def _worker_main(conn, shape) -> None:
    """Shard-worker loop: attach segments lazily, cache rebuilt
    bytecode by plan id, execute row blocks, answer with popcounts."""
    from repro.arch.expr import VectorProgram

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    shape = tuple(shape)
    segments: dict[str, tuple] = {}
    programs: dict[str, VectorProgram] = {}
    pools: dict[tuple, MatrixPool] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "ping":
            conn.send(("pong",))
            continue
        if kind == "forget":
            entry = segments.pop(message[1], None)
            if entry is not None:
                _close_quietly(entry[0])
            continue
        # ("exec", job) — every reply echoes the job id so the
        # coordinator can discard stale replies left in the pipe by a
        # round that raised before draining every worker.
        job = message[1]
        job_id = job["id"]
        try:
            program = programs.get(job["plan"])
            if program is None:
                if job["spec"] is None:
                    # The plan was evicted from this cache after the
                    # coordinator shipped it; ask for a re-ship rather
                    # than failing the job permanently.
                    conn.send(("need-spec", job_id))
                    continue
                if len(programs) >= 256:
                    programs.clear()
                program = VectorProgram.from_spec(job["spec"])
                programs[job["plan"]] = program
            lo, hi = job["rows"]
            columns = {
                logical: _attach(segments, seg, shape)[lo:hi]
                for logical, seg in job["cols"].items()}
            block_shape = (hi - lo, shape[1])
            pool = pools.get(block_shape)
            if pool is None:
                pools[block_shape] = pool = MatrixPool(block_shape)
            if program.out_regs is None:
                (out_key, _), = job["outs"]
                results = {out_key: program.run(
                    columns, shape=block_shape, pool=pool)}
            else:
                results = program.run_outputs(
                    columns, shape=block_shape, pool=pool)
            # Copy every output into its destination rows FIRST —
            # two output names may alias one matrix, and the masked
            # popcount below must never write into a result buffer.
            for out_key, seg in job["outs"]:
                dst = _attach(segments, seg, shape)[lo:hi]
                np.copyto(dst, results[out_key])
            mask = None
            if job["mask"] is not None:
                mask = _attach(segments, job["mask"], shape)[lo:hi]
            counts = {}
            for out_key, seg in job["outs"]:
                dst = _attach(segments, seg, shape)[lo:hi]
                words = dst if mask is None else \
                    np.bitwise_and(dst, mask)
                counts[out_key] = popcount_words(words).sum(
                    axis=1, dtype=np.int64).tolist()
            pool.give_unique(results.values())
            conn.send(("ok", job_id, counts))
        except Exception as exc:  # noqa: BLE001 - report, don't die
            try:
                conn.send(("err", job_id, repr(exc)))
            except (BrokenPipeError, OSError):
                break
    for entry in segments.values():
        _close_quietly(entry[0])
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


class _WorkerState:
    __slots__ = ("process", "conn", "shipped")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.shipped: set[str] = set()


class WorkerPool:
    """Scatter/gather coordinator over pinned shard-worker processes.

    ``execute`` dispatches one job per worker (its fixed row block),
    collects per-shard popcounts, and copies the shared output
    segments into caller-owned matrices.  Dead or hung workers are
    respawned and their job replayed once — column segments are
    read-only to workers, so replay is bit-exact.
    """

    def __init__(self, shape: tuple[int, int], *, workers: int,
                 timeout_s: float = 60.0) -> None:
        self.shape = tuple(shape)
        rows = self.shape[0]
        n = max(1, min(int(workers), rows))
        bounds = [rows * i // n for i in range(n + 1)]
        #: fixed contiguous row (= shard) block per worker
        self.blocks = [(lo, hi) for lo, hi in
                       zip(bounds, bounds[1:]) if hi > lo]
        self.n_workers = len(self.blocks)
        self.timeout_s = float(timeout_s)
        self._ctx = get_context("spawn")
        self._workers: list[_WorkerState | None] = \
            [None] * self.n_workers
        self._lock = threading.Lock()
        self._out_segments: list[shared_memory.SharedMemory] = []
        self._out_views: list[np.ndarray] = []
        self._prefix = \
            f"{_SEGMENT_PREFIX}{os.getpid()}p{next(_STORE_SEQ)}"
        self._started = False
        self._closed = False
        #: monotonically increasing id echoed in every worker reply;
        #: lets _recv discard stale replies left in a pipe by a round
        #: that raised before draining every worker
        self._job_seq = itertools.count(1)
        #: jobs dispatched / workers respawned / plan specs shipped
        self.jobs = 0
        self.respawns = 0
        self.plans_shipped = 0

    # -- process lifecycle ---------------------------------------------
    @staticmethod
    @contextmanager
    def _spawnable_main():
        """Spawn children re-execute ``__main__`` by file path; a
        parent driven from stdin or a REPL has a fake ``__file__``
        (``<stdin>``) that crashes the child's bootstrap.  Hide such
        a path for the duration of ``process.start()``."""
        main = sys.modules.get("__main__")
        path = getattr(main, "__file__", None)
        hidden = (main is not None
                  and getattr(main, "__spec__", None) is None
                  and path is not None and not os.path.exists(path))
        if hidden:
            del main.__file__
        try:
            yield
        finally:
            if hidden:
                main.__file__ = path

    def _spawn(self, index: int) -> _WorkerState:
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child, self.shape),
            name=f"repro-shard-{index}", daemon=True)
        with self._spawnable_main():
            process.start()
        child.close()
        return _WorkerState(process, parent)

    def _ensure_started(self) -> None:
        if self._closed:
            raise QueryError("worker pool is closed")
        if not self._started:
            for index in range(self.n_workers):
                self._workers[index] = self._spawn(index)
            self._started = True

    def _respawn(self, index: int) -> None:
        state = self._workers[index]
        if state is not None:
            try:
                state.conn.close()
            except OSError:  # pragma: no cover
                pass
            if state.process.is_alive():
                state.process.kill()
            state.process.join(timeout=5.0)
        self._workers[index] = self._spawn(index)
        self.respawns += 1

    def _ensure_out_segments(self, count: int) -> None:
        while len(self._out_segments) < count:
            index = len(self._out_segments)
            size = int(np.prod(self.shape)) * 8
            shm = shared_memory.SharedMemory(
                name=f"{self._prefix}o{index}", create=True, size=size)
            view = np.ndarray(self.shape, dtype=np.uint64,
                              buffer=shm.buf)
            view.fill(0)
            self._out_segments.append(shm)
            self._out_views.append(view)

    # -- the scatter/gather round --------------------------------------
    def execute(self, plan_key: str, spec: tuple,
                colspec: dict[str, str], mask_seg: str | None,
                out_keys: list, *, gens: dict | None = None,
                take_matrix=None) -> dict:
        """Run one program across all workers.

        Returns ``{out_key: (per_shard_counts, matrix)}`` where
        ``matrix`` is a caller-owned copy (from ``take_matrix`` when
        given) of the shared output segment.
        """
        with self._lock:
            self._ensure_started()
            self._ensure_out_segments(len(out_keys))
            outs = [(key, self._out_segments[i].name)
                    for i, key in enumerate(out_keys)]
            job_id = next(self._job_seq)

            def make_job(index: int) -> dict:
                state = self._workers[index]
                ship = plan_key not in state.shipped
                if ship:
                    state.shipped.add(plan_key)
                    self.plans_shipped += 1
                return {"id": job_id, "plan": plan_key,
                        "spec": spec if ship else None,
                        "cols": colspec, "mask": mask_seg,
                        "rows": self.blocks[index], "outs": outs,
                        "gens": gens or {}}

            for index in range(self.n_workers):
                self._dispatch(index, make_job)
            replies = [self._await(index, make_job, job_id, plan_key)
                       for index in range(self.n_workers)]
            self.jobs += self.n_workers

            rows = self.shape[0]
            counts = {key: np.zeros(rows, dtype=np.int64)
                      for key in out_keys}
            for index, reply in enumerate(replies):
                lo, hi = self.blocks[index]
                for key, block_counts in reply.items():
                    counts[key][lo:hi] = block_counts
            results = {}
            for position, key in enumerate(out_keys):
                matrix = take_matrix() if take_matrix is not None \
                    else np.empty(self.shape, dtype=np.uint64)
                np.copyto(matrix, self._out_views[position])
                results[key] = (counts[key], matrix)
            return results

    def _dispatch(self, index: int, make_job) -> None:
        try:
            self._workers[index].conn.send(("exec", make_job(index)))
        except (BrokenPipeError, OSError):
            self._respawn(index)
            self._workers[index].conn.send(("exec", make_job(index)))

    def _await(self, index: int, make_job, job_id: int,
               plan_key: str) -> dict:
        reply = self._recv(index, job_id)
        if reply is None:  # dead or hung: respawn and replay once
            self._respawn(index)
            try:
                self._workers[index].conn.send(
                    ("exec", make_job(index)))
            except (BrokenPipeError, OSError) as exc:
                raise QueryError(
                    f"shard worker {index} unavailable: {exc}"
                ) from exc
            reply = self._recv(index, job_id)
            if reply is None:
                raise QueryError(
                    f"shard worker {index} unresponsive after respawn")
        if reply[0] == "need-spec":
            # The worker evicted this plan from its bytecode cache
            # after we shipped it: forget it was shipped and replay
            # with the spec attached.
            self._workers[index].shipped.discard(plan_key)
            try:
                self._workers[index].conn.send(
                    ("exec", make_job(index)))
            except (BrokenPipeError, OSError) as exc:
                raise QueryError(
                    f"shard worker {index} unavailable: {exc}"
                ) from exc
            reply = self._recv(index, job_id)
            if reply is None:
                raise QueryError(
                    f"shard worker {index} unresponsive after "
                    f"spec re-ship")
        if reply[0] != "ok":
            raise QueryError(
                f"shard worker {index} failed: {reply[2]}")
        return reply[2]

    def _recv(self, index: int, job_id: int):
        """Receive the reply tagged ``job_id``.  Replies carrying an
        older id are stale leftovers from a round that raised before
        every worker was drained — discard them so they can never be
        attributed to this job."""
        conn = self._workers[index].conn
        deadline = time.monotonic() + self.timeout_s
        while True:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0 or not conn.poll(remaining):
                    return None
                reply = conn.recv()
            except (EOFError, OSError):
                return None
            if len(reply) >= 2 and reply[1] == job_id:
                return reply

    # -- maintenance ----------------------------------------------------
    def forget(self, segment_name: str) -> None:
        """Tell live workers to drop a cached segment mapping
        (best-effort; pipe order guarantees it lands before the next
        job)."""
        if not self._started or self._closed:
            return
        with self._lock:
            for state in self._workers:
                if state is None:
                    continue
                try:
                    state.conn.send(("forget", segment_name))
                except (BrokenPipeError, OSError):
                    pass

    def stats(self) -> dict:
        return {"workers": self.n_workers, "jobs": self.jobs,
                "respawns": self.respawns,
                "plans_shipped": self.plans_shipped,
                "started": self._started}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            for state in self._workers:
                if state is None:
                    continue
                try:
                    state.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for state in self._workers:
                if state is None:
                    continue
                state.process.join(timeout=5.0)
                if state.process.is_alive():  # pragma: no cover
                    state.process.kill()
                    state.process.join(timeout=5.0)
                try:
                    state.conn.close()
                except OSError:  # pragma: no cover
                    pass
            self._out_views.clear()
            for shm in self._out_segments:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                _close_quietly(shm)
            self._out_segments.clear()


# ----------------------------------------------------------------------
# read replicas
# ----------------------------------------------------------------------
class ReplicaStore:
    """One read replica: a full shared-memory copy of the primary.

    Kept current by the :class:`ReplicaSet` applier; readers take the
    replica read lock for the whole execution, the applier the write
    lock per event.  ``can_serve`` is the routing predicate: structure
    and mask generations must match the primary exactly, and every
    referenced column must satisfy the caller's generation fence.
    """

    def __init__(self, primary: SharedColumnStore, index: int, *,
                 read_lock) -> None:
        self._primary = primary
        self._read_lock = read_lock
        self._prefix = f"{primary._prefix}r{index}"
        self._seq = 0
        self.index = index
        self.segments: dict[str, shared_memory.SharedMemory] = {}
        self.matrices: dict[str, np.ndarray] = {}
        self._mask_shm: shared_memory.SharedMemory | None = None
        self.mask_matrix: np.ndarray | None = None
        self.applied_gen: dict[str, int] = {}
        self.applied_struct = 0
        self.applied_mask_gen = 0
        self.n_bits = primary.n_bits
        self.rw = _RWLock()
        self.reads = 0
        self._closed = False
        self._sync_full()

    # -- segment plumbing ----------------------------------------------
    def _new_segment(self) -> tuple[
            shared_memory.SharedMemory, np.ndarray]:
        name = f"{self._prefix}c{self._seq}"
        self._seq += 1
        shape = self._primary.shape
        size = int(np.prod(shape)) * 8
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=size)
        view = np.ndarray(shape, dtype=np.uint64, buffer=shm.buf)
        return shm, view

    def _copy_mask(self) -> None:
        if self.mask_matrix is None:
            shape = self._primary.shape
            size = int(np.prod(shape)) * 8
            self._mask_shm = shared_memory.SharedMemory(
                name=f"{self._prefix}m", create=True, size=size)
            self.mask_matrix = np.ndarray(
                shape, dtype=np.uint64, buffer=self._mask_shm.buf)
        np.copyto(self.mask_matrix, self._primary._mask)

    def _sync_full(self) -> None:
        """Initial catch-up: copy the whole primary under its read
        lock, recording the generations the copy reflects."""
        with self.rw.write(), self._read_lock():
            for name in list(self._primary._matrices):
                self._copy_column(name)
            self._copy_mask()
            self.applied_struct = self._primary.struct_generation
            self.applied_mask_gen = self._primary.mask_generation
            self.n_bits = self._primary.n_bits

    def _copy_column(self, name: str) -> None:
        src = self._primary._matrices.get(name)
        if src is None:
            return
        shm, view = self._new_segment()
        np.copyto(view, src)
        self.segments[name] = shm
        self.matrices[name] = view
        self.applied_gen[name] = self._primary.generations.get(name, 0)

    # -- event application ---------------------------------------------
    def apply(self, event: tuple) -> str | None:
        """Apply one mutation event.  Returns the name of the replica
        segment a ``drop`` unlinked (the :class:`ReplicaSet` forwards
        it to the worker pool's ``forget``, or workers that attached
        the segment during replica-routed scatter would hold the
        unlinked pages until respawn), else ``None``."""
        kind = event[0]
        with self.rw.write():
            if kind == "set":
                _, name, gen, dirty, values = event
                # A copy made at a later generation already reflects
                # this diff; re-applying would regress the words.
                if name not in self.matrices or \
                        gen <= self.applied_gen.get(name, 0):
                    return None
                self.matrices[name].reshape(-1)[dirty] = values
                self.applied_gen[name] = gen
            elif kind == "add":
                _, name, struct = event
                if struct <= self.applied_struct:
                    return None
                with self._read_lock():
                    self._copy_column(name)
                self.applied_struct = struct
            elif kind == "drop":
                _, name, struct = event[:3]
                if struct <= self.applied_struct:
                    return None
                self.matrices.pop(name, None)
                self.applied_gen.pop(name, None)
                shm = self.segments.pop(name, None)
                self.applied_struct = struct
                if shm is not None:
                    dropped = shm.name
                    try:
                        shm.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
                    _close_quietly(shm)
                    return dropped
            elif kind == "resize":
                _, mask_gen, n_bits = event
                if mask_gen <= self.applied_mask_gen:
                    return None
                with self._read_lock():
                    self._copy_mask()
                    self.n_bits = int(n_bits)
                self.applied_mask_gen = mask_gen
        return None

    # -- routing --------------------------------------------------------
    def can_serve(self, physicals, fences: dict | None,
                  struct: int, mask_gen: int) -> bool:
        if self._closed:
            return False
        if self.applied_struct != struct or \
                self.applied_mask_gen != mask_gen:
            return False
        for name in physicals:
            if name not in self.matrices:
                return False
            if fences and \
                    self.applied_gen.get(name, 0) < fences.get(name, 0):
                return False
        return True

    def mask_segment(self) -> str | None:
        if self._primary._full or self._mask_shm is None:
            return None
        return self._mask_shm.name

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self.rw.write():
            self.matrices.clear()
            self.mask_matrix = None
            for shm in self.segments.values():
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                _close_quietly(shm)
            self.segments.clear()
            if self._mask_shm is not None:
                try:
                    self._mask_shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                _close_quietly(self._mask_shm)
                self._mask_shm = None


class ReplicaSet:
    """N read replicas fed by one applier thread over a bounded queue.

    The queue bound **is** the staleness contract: a mutator publishing
    past ``max_lag`` undrained events blocks until the applier catches
    up, so a replica can never lag the primary by more than ``max_lag``
    mutations.  Events must be published *outside* the table write
    lock — the applier takes the table read lock for structural
    catch-up copies, so publishing under the write lock with a full
    queue would deadlock.
    """

    def __init__(self, primary: SharedColumnStore, n: int, *,
                 read_lock, max_lag: int = 256,
                 forget=None) -> None:
        self.max_lag = int(max_lag)
        self._forget = forget
        self.replicas = [
            ReplicaStore(primary, index, read_lock=read_lock)
            for index in range(max(1, int(n)))]
        self._queue: deque = deque()
        self._cv = threading.Condition()
        self._busy = False
        self._stop = False
        self._rr = 0
        self.published = 0
        self.applied = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-replica-applier", daemon=True)
        self._thread.start()

    # -- producer side --------------------------------------------------
    def publish(self, event: tuple) -> None:
        with self._cv:
            while len(self._queue) >= self.max_lag and not self._stop:
                self._cv.wait(0.05)
            if self._stop:
                return
            self._queue.append(event)
            self.published += 1
            self._cv.notify_all()

    # -- applier --------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stop:
                    self._cv.wait()
                if not self._queue:
                    return
                event = self._queue.popleft()
                self._busy = True
                self._cv.notify_all()
            try:
                for replica in self.replicas:
                    dropped = replica.apply(event)
                    if dropped is not None and \
                            self._forget is not None:
                        self._forget(dropped)
                if event[0] == "drop" and self._forget is not None:
                    self._forget(event[3])
            finally:
                with self._cv:
                    self._busy = False
                    self.applied += 1
                    self._cv.notify_all()

    def wait_caught_up(self, timeout_s: float = 5.0) -> bool:
        """Block until every published event has applied (tests)."""
        deadline = time.monotonic() + timeout_s
        with self._cv:
            while self._queue or self._busy:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cv.wait(remaining)
        return True

    # -- routing --------------------------------------------------------
    def pick(self, physicals, fences: dict | None, struct: int,
             mask_gen: int) -> ReplicaStore | None:
        """Round-robin over replicas currently able to serve."""
        n = len(self.replicas)
        for offset in range(n):
            replica = self.replicas[(self._rr + offset) % n]
            if replica.can_serve(physicals, fences, struct, mask_gen):
                self._rr = (self._rr + offset + 1) % n
                replica.reads += 1
                return replica
        return None

    def stats(self) -> dict:
        with self._cv:
            lag = len(self._queue) + (1 if self._busy else 0)
        return {"replicas": len(self.replicas),
                "published": self.published, "applied": self.applied,
                "lag": lag, "max_lag": self.max_lag,
                "reads": [r.reads for r in self.replicas]}

    def close(self) -> None:
        with self._cv:
            self._stop = True
            self._cv.notify_all()
        self._thread.join(timeout=10.0)
        for replica in self.replicas:
            replica.close()
