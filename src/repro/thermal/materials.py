"""Thermal material properties and layer presets (HotSpot-class).

Conductivities are bulk values at ~350 K; thin-film layers (BEOL metal/
oxide/ferroelectric composites) use effective values in the ranges
HotSpot's PiM modelling guidance suggests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ThermalError

__all__ = ["ThermalLayerSpec", "SILICON", "SILICON_THINNED", "BEOL_FE",
           "BEOL_TRANSISTOR", "BONDING_OXIDE", "TIM"]


@dataclass(frozen=True)
class ThermalLayerSpec:
    """One layer of the 3-D stack.

    Attributes
    ----------
    name:
        Display name (used in reports and the fig-7 layer map).
    thickness_m:
        Layer thickness in metres.
    conductivity_w_mk:
        Vertical/lateral thermal conductivity in W/(m·K) (isotropic).
    """

    name: str
    thickness_m: float
    conductivity_w_mk: float

    def __post_init__(self) -> None:
        if self.thickness_m <= 0 or self.conductivity_w_mk <= 0:
            raise ThermalError(
                f"layer {self.name!r}: thickness and conductivity must be "
                f"positive")

    def vertical_resistance(self, area_m2: float) -> float:
        """Conduction resistance through the layer, K/W."""
        if area_m2 <= 0:
            raise ThermalError("area must be positive")
        return self.thickness_m / (self.conductivity_w_mk * area_m2)


#: full-thickness compute die substrate
SILICON = ThermalLayerSpec("silicon", 300e-6, 120.0)
#: thinned die in a 3-D stack
SILICON_THINNED = ThermalLayerSpec("silicon-thinned", 50e-6, 120.0)
#: BEOL ferroelectric capacitor deck (oxide/metal/HZO composite)
BEOL_FE = ThermalLayerSpec("beol-fe", 4e-6, 2.5)
#: BEOL-compatible transistor layer (poly-Si/oxide composite)
BEOL_TRANSISTOR = ThermalLayerSpec("beol-tr", 3e-6, 8.0)
#: die-to-die bonding oxide
BONDING_OXIDE = ThermalLayerSpec("bond-oxide", 1e-6, 1.2)
#: thermal interface material under the package lid
TIM = ThermalLayerSpec("tim", 20e-6, 4.0)
#: copper heat spreader (package lid) — homogenizes the die before the
#: sink, as in HotSpot's default package model
COPPER_SPREADER = ThermalLayerSpec("cu-spreader", 1.2e-3, 390.0)
