"""Steady-state 3-D finite-volume thermal solver (HotSpot substitute).

Discretises the stack into ``nx × ny`` tiles per layer (subarray
granularity, as the paper does "to balance accuracy and computational
efficiency").  Vertical conduction couples adjacent layers through their
half-thickness series resistance; lateral conduction couples in-plane
neighbours; the top layer couples to ambient through the lumped package
(spreader + natural-convection sink) resistance distributed per tile.
The resulting sparse SPD system is solved directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.errors import ThermalError
from repro.thermal.stack import ThermalStack

__all__ = ["ThermalResult", "solve_steady_state"]


@dataclass
class ThermalResult:
    """Temperatures of every tile, with reporting helpers."""

    temperatures_k: np.ndarray      # (n_layers, ny, nx)
    stack: ThermalStack
    power_w: np.ndarray             # (n_layers, ny, nx)

    @property
    def peak_k(self) -> float:
        return float(self.temperatures_k.max())

    @property
    def peak_location(self) -> tuple[int, int, int]:
        """(layer, y, x) indices of the hottest tile."""
        flat = int(np.argmax(self.temperatures_k))
        return np.unravel_index(flat, self.temperatures_k.shape)

    def layer_peak(self, layer: int) -> float:
        return float(self.temperatures_k[layer].max())

    def layer_mean(self, layer: int) -> float:
        return float(self.temperatures_k[layer].mean())

    def layer_profile(self) -> dict[str, tuple[float, float]]:
        """{layer name: (mean K, peak K)} bottom → top."""
        return {layer.name: (self.layer_mean(idx), self.layer_peak(idx))
                for idx, layer in enumerate(self.stack.layers)}

    def total_power_w(self) -> float:
        return float(self.power_w.sum())


def solve_steady_state(stack: ThermalStack,
                       power_maps: dict[int, np.ndarray], *,
                       nx: int = 32, ny: int = 24) -> ThermalResult:
    """Solve the steady-state temperature field.

    Parameters
    ----------
    stack:
        Layer stack with geometry and boundary parameters.
    power_maps:
        ``{layer_index: (ny, nx) array of watts per tile}``.  Layers not
        present dissipate nothing.
    nx, ny:
        Tile grid (the paper's subarray granularity).
    """
    n_layers = stack.n_layers
    if n_layers < 1:
        raise ThermalError("stack has no layers")
    if nx < 2 or ny < 2:
        raise ThermalError("grid must be at least 2x2")
    power = np.zeros((n_layers, ny, nx))
    for layer_idx, pmap in power_maps.items():
        if not 0 <= layer_idx < n_layers:
            raise ThermalError(f"power map for unknown layer {layer_idx}")
        pmap = np.asarray(pmap, dtype=float)
        if pmap.shape != (ny, nx):
            raise ThermalError(
                f"power map for layer {layer_idx} has shape {pmap.shape}, "
                f"expected {(ny, nx)}")
        if np.any(pmap < 0):
            raise ThermalError("power must be non-negative")
        power[layer_idx] = pmap

    dx = stack.width_m / nx
    dy = stack.height_m / ny
    tile_area = dx * dy
    n = n_layers * ny * nx

    def node(layer: int, j: int, i: int) -> int:
        return (layer * ny + j) * nx + i

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs = power.reshape(-1).copy()
    diag = np.zeros(n)

    def couple(a: int, b: int, g: float) -> None:
        rows.append(a)
        cols.append(b)
        vals.append(-g)
        rows.append(b)
        cols.append(a)
        vals.append(-g)
        diag[a] += g
        diag[b] += g

    # Lateral conduction within each layer.
    for layer_idx, layer in enumerate(stack.layers):
        k = layer.conductivity_w_mk
        t = layer.thickness_m
        g_x = k * t * dy / dx
        g_y = k * t * dx / dy
        for j in range(ny):
            for i in range(nx):
                a = node(layer_idx, j, i)
                if i + 1 < nx:
                    couple(a, node(layer_idx, j, i + 1), g_x)
                if j + 1 < ny:
                    couple(a, node(layer_idx, j + 1, i), g_y)

    # Vertical conduction between adjacent layers (half-thickness series).
    for layer_idx in range(n_layers - 1):
        lo = stack.layers[layer_idx]
        hi = stack.layers[layer_idx + 1]
        r_unit = (lo.thickness_m / (2 * lo.conductivity_w_mk)
                  + hi.thickness_m / (2 * hi.conductivity_w_mk))
        g_v = tile_area / r_unit
        for j in range(ny):
            for i in range(nx):
                couple(node(layer_idx, j, i), node(layer_idx + 1, j, i),
                       g_v)

    # Package path: top layer to ambient, distributed per tile.
    g_pkg_tile = 1.0 / (stack.package_resistance_k_w * nx * ny)
    top = n_layers - 1
    for j in range(ny):
        for i in range(nx):
            a = node(top, j, i)
            diag[a] += g_pkg_tile
            rhs[a] += g_pkg_tile * stack.ambient_k

    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag.tolist())
    matrix = sparse.csr_matrix(
        (np.asarray(vals), (np.asarray(rows), np.asarray(cols))),
        shape=(n, n))
    temperatures = spsolve(matrix, rhs)
    if not np.all(np.isfinite(temperatures)):
        raise ThermalError("thermal solve produced non-finite temperatures")
    return ThermalResult(
        temperatures_k=temperatures.reshape(n_layers, ny, nx),
        stack=stack,
        power_w=power)
