"""Power-map generation: TPU compute die + memory-layer activity.

The §VII system runs a workload's bulk-bitwise commands in the stacked
FeRAM while the compute die idles at the edge-TPU's 28 W.  The TPU
floorplan concentrates power in a systolic-array region (a hotspot off
die centre); memory-layer power comes from the architecture simulator's
energy/wall-time for the workload, spread over the active subarray
tiles.
"""

from __future__ import annotations

import numpy as np

from repro.arch.commands import Stats
from repro.arch.spec import MemorySpec
from repro.errors import ThermalError
from repro.workloads.base import WorkloadResult

__all__ = ["tpu_power_map", "memory_power_maps", "workload_memory_power"]

#: edge TPU idle/compute power (paper's representative compute core)
TPU_POWER_W = 28.0


def tpu_power_map(nx: int = 32, ny: int = 24, *,
                  total_w: float = TPU_POWER_W,
                  hotspot_fraction: float = 0.2,
                  hotspot_extent: float = 0.65) -> np.ndarray:
    """TPU-like floorplan: ``hotspot_fraction`` of the power inside a
    systolic-array block covering ``hotspot_extent`` of each dimension,
    the rest uniform (SRAM/NoC/IO)."""
    if total_w <= 0:
        raise ThermalError("total power must be positive")
    if not 0 < hotspot_fraction <= 1 or not 0 < hotspot_extent <= 1:
        raise ThermalError("fractions must be in (0, 1]")
    power = np.full((ny, nx), total_w * (1 - hotspot_fraction) / (nx * ny))
    bx = max(1, int(nx * hotspot_extent))
    by = max(1, int(ny * hotspot_extent))
    # Systolic block sits off-centre (toward one die corner), as in the
    # edge-TPU floorplans the paper cites.
    x0 = nx // 8
    y0 = ny // 8
    block = power[y0:y0 + by, x0:x0 + bx]
    block += total_w * hotspot_fraction / block.size
    return power


def workload_memory_power(result: WorkloadResult) -> float:
    """Average memory power (W) while the workload executes."""
    if result.wall_time_s <= 0:
        raise ThermalError("workload has zero wall time")
    return result.energy_j / result.wall_time_s


def memory_power_maps(total_memory_w: float, layer_indices: list[int],
                      nx: int = 32, ny: int = 24, *,
                      active_fraction: float = 1.0,
                      layer_weights: list[float] | None = None,
                      ) -> dict[int, np.ndarray]:
    """Distribute memory power across the FeRAM device layers.

    ``layer_weights`` splits power between the T_R, capacitor and T_W
    layers (default: T_R-heavy, since the read transistor carries the
    sense current); within a layer, power is uniform over the active
    subarray fraction (row-parallel bulk ops touch all subarrays of the
    active rank).
    """
    if total_memory_w < 0:
        raise ThermalError("memory power must be non-negative")
    if not layer_indices:
        raise ThermalError("need at least one memory layer")
    if not 0 < active_fraction <= 1:
        raise ThermalError("active_fraction must be in (0, 1]")
    if layer_weights is None:
        # T_R layer (first) sinks half; remainder split evenly.
        rest = len(layer_indices) - 1
        layer_weights = [0.5] + [0.5 / rest] * rest if rest else [1.0]
    if len(layer_weights) != len(layer_indices):
        raise ThermalError("one weight per layer required")
    total_weight = sum(layer_weights)
    if total_weight <= 0:
        raise ThermalError("weights must sum to a positive value")
    n_active = max(1, int(nx * ny * active_fraction))
    maps: dict[int, np.ndarray] = {}
    for layer_idx, weight in zip(layer_indices, layer_weights):
        pmap = np.zeros((ny, nx))
        per_tile = total_memory_w * (weight / total_weight) / n_active
        flat = pmap.reshape(-1)
        flat[:n_active] = per_tile
        maps[layer_idx] = flat.reshape(ny, nx)
    return maps


def stats_power(stats: Stats, spec: MemorySpec) -> float:
    """Average power of an engine run (energy over wall time)."""
    wall = stats.wall_time_s(spec)
    if wall <= 0:
        raise ThermalError("run has zero wall time")
    return stats.total_energy_j / wall
