"""HotSpot-substitute thermal modelling: 3-D finite-volume steady-state
solver over the compute-die + stacked-FeRAM system of §VII, with
TPU-like and workload-driven power maps.
"""

from repro.thermal.materials import (
    BEOL_FE,
    BEOL_TRANSISTOR,
    BONDING_OXIDE,
    SILICON,
    SILICON_THINNED,
    TIM,
    ThermalLayerSpec,
)
from repro.thermal.powermap import (
    TPU_POWER_W,
    memory_power_maps,
    tpu_power_map,
    workload_memory_power,
)
from repro.thermal.solver import ThermalResult, solve_steady_state
from repro.thermal.stack import (
    DEFAULT_PACKAGE_RESISTANCE_K_W,
    FIG7_DIE_HEIGHT_MM,
    FIG7_DIE_WIDTH_MM,
    ThermalStack,
    build_fig7_stack,
)

__all__ = [
    "ThermalLayerSpec",
    "SILICON",
    "SILICON_THINNED",
    "BEOL_FE",
    "BEOL_TRANSISTOR",
    "BONDING_OXIDE",
    "TIM",
    "ThermalStack",
    "build_fig7_stack",
    "FIG7_DIE_WIDTH_MM",
    "FIG7_DIE_HEIGHT_MM",
    "DEFAULT_PACKAGE_RESISTANCE_K_W",
    "ThermalResult",
    "solve_steady_state",
    "tpu_power_map",
    "memory_power_maps",
    "workload_memory_power",
    "TPU_POWER_W",
]
