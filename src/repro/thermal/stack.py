"""Layer-stack builder for the §VII thermal study.

The modelled system (paper Fig. 7(a)): a compute die (edge-TPU-class,
28 W) at the bottom, and on top of it the (n+2)-layer vertical 2T-nC
FeRAM die — T_R layer, n ferroelectric capacitor decks, T_W layer —
under the package lid.  Heat leaves through the top via a lumped
spreader+heatsink resistance to ambient (natural convection, 300 K);
the board side is adiabatic (worst case, as in HotSpot's default
secondary-path-off configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ThermalError
from repro.thermal.materials import (
    BEOL_FE,
    BEOL_TRANSISTOR,
    BONDING_OXIDE,
    COPPER_SPREADER,
    SILICON,
    TIM,
    ThermalLayerSpec,
)

__all__ = ["ThermalStack", "build_fig7_stack", "FIG7_DIE_WIDTH_MM",
           "FIG7_DIE_HEIGHT_MM", "DEFAULT_PACKAGE_RESISTANCE_K_W"]

FIG7_DIE_WIDTH_MM = 14.2
FIG7_DIE_HEIGHT_MM = 10.65

#: Lumped spreader + natural-convection heatsink resistance to ambient.
#: Calibrated once so the bitmap-index-query power map reproduces the
#: paper's 351.88 K peak (see experiments.fig7_thermal.calibrate).
DEFAULT_PACKAGE_RESISTANCE_K_W = 1.691


@dataclass
class ThermalStack:
    """An ordered stack of layers with per-layer power maps."""

    width_m: float
    height_m: float
    layers: list[ThermalLayerSpec] = field(default_factory=list)
    ambient_k: float = 300.0
    package_resistance_k_w: float = DEFAULT_PACKAGE_RESISTANCE_K_W

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ThermalError("stack dimensions must be positive")
        if self.ambient_k <= 0:
            raise ThermalError("ambient temperature must be positive")
        if self.package_resistance_k_w <= 0:
            raise ThermalError("package resistance must be positive")

    @property
    def area_m2(self) -> float:
        return self.width_m * self.height_m

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def add_layer(self, layer: ThermalLayerSpec) -> int:
        """Append a layer (bottom→top); returns its index."""
        self.layers.append(layer)
        return len(self.layers) - 1

    def layer_index(self, name: str) -> int:
        for idx, layer in enumerate(self.layers):
            if layer.name == name:
                return idx
        raise ThermalError(f"no layer named {name!r}")


def build_fig7_stack(n_caps: int = 3, *,
                     ambient_k: float = 300.0,
                     package_resistance_k_w: float =
                     DEFAULT_PACKAGE_RESISTANCE_K_W) -> ThermalStack:
    """The paper's Fig. 7 stack: compute die + (n+2)-layer FeRAM die.

    Layer order (bottom → top): compute silicon (L0), bond oxide, T_R
    layer (L1), n capacitor decks (L2..), T_W layer (L(n+2)), TIM.
    """
    if n_caps < 1:
        raise ThermalError("need at least one capacitor layer")
    stack = ThermalStack(
        width_m=FIG7_DIE_WIDTH_MM * 1e-3,
        height_m=FIG7_DIE_HEIGHT_MM * 1e-3,
        ambient_k=ambient_k,
        package_resistance_k_w=package_resistance_k_w)
    stack.add_layer(SILICON.__class__("L0-compute", SILICON.thickness_m,
                                      SILICON.conductivity_w_mk))
    stack.add_layer(BONDING_OXIDE)
    stack.add_layer(ThermalLayerSpec("L1-TR", BEOL_TRANSISTOR.thickness_m,
                                     BEOL_TRANSISTOR.conductivity_w_mk))
    for k in range(n_caps):
        stack.add_layer(ThermalLayerSpec(f"L{k + 2}-C{k + 1}",
                                         BEOL_FE.thickness_m,
                                         BEOL_FE.conductivity_w_mk))
    stack.add_layer(ThermalLayerSpec(f"L{n_caps + 2}-TW",
                                     BEOL_TRANSISTOR.thickness_m,
                                     BEOL_TRANSISTOR.conductivity_w_mk))
    stack.add_layer(TIM)
    stack.add_layer(COPPER_SPREADER)
    return stack
