"""2T-nC FeRAM unit cell: netlist construction and simulation.

Topology (paper Fig. 3(a)):

* ``n`` ferroelectric capacitors, each between its write bit line
  (``wbl<i>``) and the shared internal node ``vint``;
* write transistor ``T_W`` between ``vint`` and the write plate line
  (``wpl``), gated by the write word line (``wwl``);
* read transistor ``T_R`` with gate ``vint``, drain ``rbl`` (read bit
  line) and source ``rsl`` (read source line);
* the RSL is held at virtual ground through a 0 V source that doubles as
  the sense ammeter;
* the internal-node capacitance (T_R gate + parasitics) is an explicit
  capacitor so the QNRO charge divider is visible and testable.

For comparison experiments the module also provides the 1T-1C FeRAM cell
(destructive charge sensing, paper Fig. 2(a)).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.ferro.fecap import FeCapacitor
from repro.ferro.materials import NVDRAM_CAL, FerroMaterial
from repro.spice.analysis import TransientResult
from repro.spice.circuit import Circuit
from repro.spice.components import Capacitor, Resistor, VoltageSource
from repro.spice.mosfet import PTM45_NMOS, Mosfet, MosfetParams
from repro.spice.solver import SolverOptions, TransientSolver
from repro.core.waveforms import CellSchedule

__all__ = ["TwoTnCCell", "OneT1CFeRAMCell"]


class TwoTnCCell:
    """A simulatable 2T-nC FeRAM cell.

    Parameters
    ----------
    n_caps:
        Number of ferroelectric capacitors sharing the internal node
        (the paper uses n = 3 for TBA logic).
    material:
        FeCap parameter set (default: the NVDRAM-calibrated low-voltage
        model used by the paper's Spectre runs).
    tw_params / tr_params:
        Write / read transistor models.
    c_node:
        Internal-node capacitance (T_R gate + parasitics), farads.
    initial_bits:
        Optional starting bits per capacitor (fully-poled states).
    rng:
        Optional generator enabling device-to-device Vc variation.
    temperature_k:
        Device temperature for the ferroelectric banks.
    """

    RSL_SENSE = "vrsl_sense"

    def __init__(self, n_caps: int = 3, *,
                 material: FerroMaterial = NVDRAM_CAL,
                 tw_params: MosfetParams = PTM45_NMOS,
                 tr_params: MosfetParams = PTM45_NMOS,
                 c_node: float = 5e-15,
                 initial_bits: dict[int, int] | None = None,
                 rng: np.random.Generator | None = None,
                 temperature_k: float | None = None,
                 n_domains: int | None = None) -> None:
        if n_caps < 1:
            raise ProtocolError("cell needs at least one capacitor")
        if n_domains is not None:
            material = material.scaled(n_domains=n_domains)
        self.n_caps = n_caps
        self.material = material
        self.circuit = Circuit(f"2t{n_caps}c")
        # Rail sources: waveforms are attached per-run via .waveform.
        self._rails = {}
        for net in CellSchedule.net_names(n_caps):
            src = VoltageSource(f"v_{net}", net, "0", 0.0)
            self.circuit.add(src)
            self._rails[net] = src
        # Ferroelectric capacitors: top plate on WBL, bottom on vint.
        self.fecaps: list[FeCapacitor] = []
        initial_bits = initial_bits or {}
        for i in range(n_caps):
            state = 0.0
            if i in initial_bits:
                state = 1.0 if initial_bits[i] else -1.0
            cap = FeCapacitor(f"fe{i + 1}", f"wbl{i + 1}", "vint", material,
                              initial_state=state, rng=rng,
                              temperature_k=temperature_k)
            self.circuit.add(cap)
            self.fecaps.append(cap)
        # Write transistor: drain = vint, gate = wwl, source = wpl.
        self.t_write = Mosfet("t_w", "vint", "wwl", "wpl", tw_params)
        self.circuit.add(self.t_write)
        # Read transistor: drain = rbl, gate = vint, source = rsl.
        self.t_read = Mosfet("t_r", "rbl", "vint", "rsl", tr_params)
        self.circuit.add(self.t_read)
        # Internal node capacitance and a weak leak keeping DC defined.
        self.circuit.add(Capacitor("c_node", "vint", "0", c_node))
        self.circuit.add(Resistor("r_leak", "vint", "0", 1e13))
        # RSL virtual ground / ammeter.
        self.circuit.add(VoltageSource(self.RSL_SENSE, "rsl", "0", 0.0))
        self.circuit.freeze()

    # ------------------------------------------------------------------
    def new_schedule(self, **kwargs) -> CellSchedule:
        """A schedule builder matching this cell's capacitor count."""
        return CellSchedule(self.n_caps, **kwargs)

    def run(self, schedule: CellSchedule, *, dt: float = 5e-10,
            options: SolverOptions | None = None,
            record_every: int = 1) -> TransientResult:
        """Apply a schedule's waveforms and simulate to its end time."""
        if schedule.n_caps != self.n_caps:
            raise ProtocolError(
                f"schedule built for {schedule.n_caps} caps, cell has "
                f"{self.n_caps}")
        for net, wave in schedule.waveforms().items():
            self._rails[net].waveform = wave
        for cap in self.fecaps:
            cap.reset_terminal()
        solver = TransientSolver(self.circuit, options)
        return solver.run(schedule.t_stop, dt, record_every=record_every)

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    def stored_bits(self) -> list[int]:
        """Committed bit per capacitor (P >= 0 → '1')."""
        return [cap.stored_bit() for cap in self.fecaps]

    def polarizations_uc_cm2(self) -> list[float]:
        """Committed polarization per capacitor in µC/cm²."""
        return [cap.polarization_uc_cm2() for cap in self.fecaps]

    def force_bits(self, bits: dict[int, int]) -> None:
        """Directly pole capacitors to the given bits (no simulation)."""
        for i, bit in bits.items():
            if not 0 <= i < self.n_caps:
                raise ProtocolError(f"capacitor index {i} out of range")
            self.fecaps[i].write_state(bit)

    def rsl_current(self, result: TransientResult) -> np.ndarray:
        """RSL (sense) current trace from a run result."""
        return result.i(self.RSL_SENSE)


class OneT1CFeRAMCell:
    """Conventional 1T-1C FeRAM cell for the Fig. 2(a) comparison.

    One access transistor between the bit line (``bl``) and the capacitor
    top plate; the FE capacitor's other plate is the plate line (``pl``).
    Reading drives PL high and senses the charge dumped on the (floating,
    precharged) bit line — destructive for the stored '1'.
    """

    def __init__(self, *, material: FerroMaterial = NVDRAM_CAL,
                 access_params: MosfetParams = PTM45_NMOS,
                 c_bitline: float = 20e-15,
                 initial_bit: int | None = None,
                 n_domains: int | None = None) -> None:
        if n_domains is not None:
            material = material.scaled(n_domains=n_domains)
        self.material = material
        self.circuit = Circuit("1t1c")
        self.v_wl = self.circuit.add(VoltageSource("v_wl", "wl", "0", 0.0))
        self.v_pl = self.circuit.add(VoltageSource("v_pl", "pl", "0", 0.0))
        # Bit-line pre-charge switchably driven: a source with series R
        # models the equalizer; sensing happens on the floating line.
        # Weak keeper only: the bit line floats during sensing so the
        # dumped switching charge develops a charge-sharing signal.
        self.v_blpre = self.circuit.add(
            VoltageSource("v_blpre", "blpre", "0", 0.0))
        self.circuit.add(Resistor("r_pre", "blpre", "bl", 1e11))
        state = 0.0
        if initial_bit is not None:
            state = 1.0 if initial_bit else -1.0
        self.fecap = FeCapacitor("fe1", "cnode", "pl", material,
                                 initial_state=state)
        self.circuit.add(self.fecap)
        self.access = Mosfet("t_acc", "bl", "wl", "cnode", access_params)
        self.circuit.add(self.access)
        self.circuit.add(Capacitor("c_bl", "bl", "0", c_bitline))
        self.circuit.add(Resistor("r_leak", "cnode", "0", 1e13))
        self.circuit.freeze()

    def destructive_read(self, *, v_pl: float = 1.5, v_wl: float = 1.9,
                         t_read: float = 60e-9, dt: float = 5e-10,
                         ) -> tuple[float, float]:
        """Pulse the plate line and sense the bit-line swing.

        Returns ``(v_bl_peak, p_after_uc_cm2)`` — the charge-sharing
        signal and the post-read polarization.  Driving PL high forces
        the capacitor toward the '0' polarity, so a stored '1' flips
        (large dumped charge, destructive) while a stored '0' only
        contributes its dielectric response — Fig. 2(a).
        """
        from repro.spice.waveform import PWL
        edge = 1e-9
        self.v_wl.waveform = PWL([(0, 0), (edge, v_wl)])
        self.v_pl.waveform = PWL([(0, 0), (2 * edge, 0), (3 * edge, v_pl)])
        self.v_blpre.waveform = PWL([(0, 0)])  # BL held near ground via R
        solver = TransientSolver(self.circuit)
        result = solver.run(t_read, dt)
        v_bl_peak = float(np.max(result.v("bl")))
        return v_bl_peak, self.fecap.polarization_uc_cm2()
