"""Boolean logic helpers: MINORITY/MAJORITY and derived universal gates.

The paper's central identity (§III-C): simultaneously sensing three
capacitors of a 2T-nC cell yields the MINORITY of the stored bits,

    MIN(A, B, C) = NOT(MAJ(A, B, C))
                 = C'·(A' + B') + C·(A'·B')

so a control capacitor C selects between NAND (C = 0) and NOR (C = 1).

Scalar forms operate on Python ints (0/1); ``*_words`` forms operate
bitwise on numpy integer arrays (used by the bulk-bitwise architecture
layer on packed rows).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError

__all__ = [
    "majority3",
    "minority3",
    "nand2",
    "nor2",
    "not1",
    "minority_truth_table",
    "majority_words",
    "minority_words",
    "nand_words",
    "nor_words",
    "not_words",
]


def _check_bit(value: int, name: str) -> int:
    if value not in (0, 1):
        raise ProtocolError(f"{name} must be 0 or 1, got {value!r}")
    return value


def majority3(a: int, b: int, c: int) -> int:
    """Majority of three bits."""
    _check_bit(a, "a"), _check_bit(b, "b"), _check_bit(c, "c")
    return 1 if a + b + c >= 2 else 0


def minority3(a: int, b: int, c: int) -> int:
    """Minority of three bits — the TBA sense result of a 2T-nC cell."""
    return 1 - majority3(a, b, c)


def nand2(a: int, b: int) -> int:
    """NAND via the paper's construction: MIN(a, b, 0)."""
    return minority3(a, b, 0)


def nor2(a: int, b: int) -> int:
    """NOR via the paper's construction: MIN(a, b, 1)."""
    return minority3(a, b, 1)


def not1(a: int) -> int:
    """NOT — QNRO sensing is inherently inverting (paper §III-B)."""
    return 1 - _check_bit(a, "a")


def minority_truth_table() -> dict[tuple[int, int, int], int]:
    """All eight (A, B, C) → MIN rows, keyed by stored state."""
    return {(a, b, c): minority3(a, b, c)
            for a in (0, 1) for b in (0, 1) for c in (0, 1)}


# ----------------------------------------------------------------------
# packed-word (bulk bitwise) forms
# ----------------------------------------------------------------------
def majority_words(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Bitwise majority across three equally-shaped integer arrays."""
    return (a & b) | (a & c) | (b & c)


def minority_words(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Bitwise minority — one TBA across a whole row of 2T-nC cells."""
    return ~majority_words(a, b, c)


def nand_words(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise NAND: minority with an all-zeros control row."""
    zeros = np.zeros_like(a)
    return minority_words(a, b, zeros)


def nor_words(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise NOR: minority with an all-ones control row."""
    ones = np.bitwise_not(np.zeros_like(a))
    return minority_words(a, b, ones)


def not_words(a: np.ndarray) -> np.ndarray:
    """Bitwise NOT: the row-wide inverting QNRO read."""
    return ~a
