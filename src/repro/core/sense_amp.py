"""Behavioural sense amplifier: reference comparison with offset/noise.

The paper's SA compares the RSL current (or the integrated RSL voltage)
against a reference level — placed between the '001' and '011' TBA output
levels for MINORITY sensing (§IV), or between the '0' and '1' QNRO levels
for NOT.  We model the comparator behaviourally with an input-referred
offset, which is the dominant non-ideality for current-sensing schemes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ProtocolError

__all__ = ["SenseAmp", "reference_between"]


def reference_between(level_low: float, level_high: float,
                      *, position: float = 0.5) -> float:
    """Reference placed fractionally between two sense levels.

    ``position = 0.5`` is the midpoint; the paper places the MINORITY
    reference "between the output currents for input bits '001' and
    '011'".
    """
    if not 0.0 < position < 1.0:
        raise ProtocolError("position must be in (0, 1)")
    if level_high < level_low:
        level_low, level_high = level_high, level_low
    return level_low + position * (level_high - level_low)


class SenseAmp:
    """Latch-type comparator with input-referred offset.

    Parameters
    ----------
    reference:
        Decision threshold (same unit as the sensed quantity, typically
        amperes of RSL current).
    offset_sigma:
        Standard deviation of the random input offset; resampled per
        :meth:`compare` when ``rng`` is given, fixed at 0 otherwise.
    rng:
        Random generator for offset sampling (None → ideal comparator).
    """

    def __init__(self, reference: float, *, offset_sigma: float = 0.0,
                 rng: np.random.Generator | None = None) -> None:
        if reference <= 0:
            raise ProtocolError("reference must be positive")
        if offset_sigma < 0:
            raise ProtocolError("offset_sigma must be non-negative")
        self.reference = float(reference)
        self.offset_sigma = float(offset_sigma)
        self._rng = rng

    def compare(self, sensed: float) -> int:
        """1 if ``sensed`` exceeds the (offset-perturbed) reference."""
        offset = 0.0
        if self._rng is not None and self.offset_sigma > 0:
            offset = float(self._rng.normal(0.0, self.offset_sigma))
        return 1 if sensed > self.reference + offset else 0

    def margin(self, sensed: float) -> float:
        """Signed distance from the reference (positive → reads '1')."""
        return sensed - self.reference

    def sense_yield(self, sensed: float, *, trials: int = 1000) -> float:
        """Fraction of trials decided away from the wrong side, under the
        configured offset distribution (1.0 for an ideal comparator)."""
        if trials < 1:
            raise ProtocolError("trials must be >= 1")
        if self.offset_sigma == 0.0 or self._rng is None:
            return 1.0
        offsets = self._rng.normal(0.0, self.offset_sigma, size=trials)
        decisions = sensed > self.reference + offsets
        majority = decisions.mean() >= 0.5
        return float(np.mean(decisions == majority))

    @classmethod
    def from_levels(cls, levels: Sequence[float], *, split_after: int,
                    offset_sigma: float = 0.0,
                    rng: np.random.Generator | None = None) -> "SenseAmp":
        """Build an SA whose reference separates ``levels[:split_after]``
        from ``levels[split_after:]`` (levels sorted ascending first)."""
        ordered = sorted(float(x) for x in levels)
        if not 0 < split_after < len(ordered):
            raise ProtocolError("split_after must partition the levels")
        ref = reference_between(ordered[split_after - 1],
                                ordered[split_after])
        return cls(ref, offset_sigma=offset_sigma, rng=rng)
