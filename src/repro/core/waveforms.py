"""Protocol waveform schedules for 2T-nC cell operations.

A :class:`CellSchedule` accumulates phases (write / QNRO read / TBA /
reset) and renders one PWL waveform per cell net, plus named measurement
windows used by the operation layer to sense currents and check state
preservation.  The phase structure mirrors the paper's Fig. 3(b,c,e):

* **write** — WWL high connects the internal node to WPL; selected WBLs
  carry the data rail.  Same-polarity bits are written together
  (one sub-phase per polarity), and unselected WBLs track WPL so
  unaddressed capacitors see 0 V (no half-select disturb).
* **read (QNRO / TBA)** — WWL low; the read voltage ``v_read`` is applied
  to the target WBL(s), RBL is biased, and the T_R current is sensed at
  the RSL.
* **reset** — the PRECHARGE step: node drained through T_W with all rails
  at 0 V.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.spice.waveform import PWL

__all__ = ["CellTiming", "CellLevels", "Phase", "CellSchedule"]


@dataclass(frozen=True)
class CellTiming:
    """Edge and dwell times (seconds) for protocol phases."""

    t_edge: float = 1e-9       # rail rise/fall
    t_write: float = 80e-9     # write dwell
    t_read: float = 50e-9      # read dwell
    t_reset: float = 15e-9     # node-drain dwell
    t_gap: float = 4e-9        # inter-phase spacing

    def __post_init__(self) -> None:
        for name in ("t_edge", "t_write", "t_read", "t_reset", "t_gap"):
            if getattr(self, name) <= 0:
                raise ProtocolError(f"{name} must be positive")


@dataclass(frozen=True)
class CellLevels:
    """Voltage rails (volts) for protocol phases."""

    v_write: float = 1.5       # data rail during writes
    v_wwl: float = 1.5         # write word-line high level
    v_read: float = 0.75       # QNRO read voltage on WBL
    v_rbl: float = 0.5         # read bit-line bias
    v_wwl_boost: float = 0.4   # extra WWL drive above v_write (pass-gate)

    def __post_init__(self) -> None:
        if self.v_write <= 0 or self.v_wwl <= 0:
            raise ProtocolError("write levels must be positive")
        if not 0 < self.v_read < self.v_write:
            raise ProtocolError("v_read must lie in (0, v_write)")


@dataclass
class Phase:
    """A named time window in the rendered schedule."""

    name: str
    t_start: float
    t_end: float
    kind: str
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def sense_window(self, fraction: float = 0.4) -> tuple[float, float]:
        """Trailing sub-window for settled measurements."""
        if not 0 < fraction <= 1:
            raise ProtocolError("fraction must be in (0, 1]")
        return self.t_end - fraction * self.duration, self.t_end


class CellSchedule:
    """Builds the per-net PWL stimulus for a sequence of cell operations."""

    def __init__(self, n_caps: int, *, timing: CellTiming | None = None,
                 levels: CellLevels | None = None) -> None:
        if n_caps < 1:
            raise ProtocolError("cell needs at least one capacitor")
        self.n_caps = n_caps
        self.timing = timing or CellTiming()
        self.levels = levels or CellLevels()
        self._t = 0.0
        self.phases: list[Phase] = []
        # net -> list[(t, v)]; nets start at 0 V.
        self._points: dict[str, list[tuple[float, float]]] = {
            net: [(0.0, 0.0)] for net in self.net_names(n_caps)}

    @staticmethod
    def net_names(n_caps: int) -> list[str]:
        nets = ["wwl", "wpl", "rbl"]
        nets += [f"wbl{i + 1}" for i in range(n_caps)]
        return nets

    # ------------------------------------------------------------------
    # low-level rail control
    # ------------------------------------------------------------------
    def _set(self, net: str, t: float, value: float) -> None:
        if net not in self._points:
            raise ProtocolError(f"unknown net {net!r}")
        self._points[net].append((t, value))

    def _level_of(self, net: str) -> float:
        return self._points[net][-1][1]

    def _transition(self, targets: dict[str, float], *,
                    dwell: float) -> tuple[float, float]:
        """Ramp the listed nets to new values, dwell, return the window."""
        tm = self.timing
        t0 = self._t
        for net, value in targets.items():
            self._set(net, t0, self._level_of(net))
            self._set(net, t0 + tm.t_edge, value)
        t_settle = t0 + tm.t_edge
        t_end = t_settle + dwell
        self._t = t_end
        return t_settle, t_end

    def _release_all(self) -> None:
        """Return every net to 0 V and advance past the gap."""
        tm = self.timing
        t0 = self._t
        for net in self._points:
            self._set(net, t0, self._level_of(net))
            self._set(net, t0 + tm.t_edge, 0.0)
        self._t = t0 + tm.t_edge + tm.t_gap

    # ------------------------------------------------------------------
    # protocol phases
    # ------------------------------------------------------------------
    def add_write(self, bits: dict[int, int], label: str = "write") -> None:
        """Write the given ``{cap_index: bit}`` map (0-based indices).

        Bits of equal polarity are written in one sub-phase:
        '1' → WBL = v_write, WPL = 0;  '0' → WBL = 0, WPL = v_write.
        Unselected WBLs follow WPL so their capacitors see 0 V.
        """
        if not bits:
            raise ProtocolError("write requires at least one bit")
        for cap, bit in bits.items():
            if not 0 <= cap < self.n_caps:
                raise ProtocolError(f"capacitor index {cap} out of range")
            if bit not in (0, 1):
                raise ProtocolError(f"bit for capacitor {cap} must be 0/1")
        tm, lv = self.timing, self.levels
        for polarity in (1, 0):
            selected = [cap for cap, bit in bits.items() if bit == polarity]
            if not selected:
                continue
            wpl = 0.0 if polarity == 1 else lv.v_write
            wbl_sel = lv.v_write if polarity == 1 else 0.0
            targets = {"wwl": lv.v_wwl + lv.v_wwl_boost, "wpl": wpl}
            for i in range(self.n_caps):
                net = f"wbl{i + 1}"
                targets[net] = wbl_sel if i in selected else wpl
            t_settle, t_end = self._transition(targets, dwell=tm.t_write)
            self.phases.append(Phase(
                name=f"{label}-{'ones' if polarity else 'zeros'}",
                t_start=t_settle, t_end=t_end, kind="write",
                meta={"bits": {c: polarity for c in selected}}))
            # Drain the internal node through T_W before dropping WWL;
            # otherwise a write-zeros phase leaves ~v_write of trapped
            # charge on the floating node, corrupting the next read.
            drain = {"wwl": lv.v_wwl, "wpl": 0.0}
            for i in range(self.n_caps):
                drain[f"wbl{i + 1}"] = 0.0
            self._transition(drain, dwell=tm.t_reset)
            self._release_all()

    def add_read(self, caps: list[int], label: str = "read") -> Phase:
        """QNRO read (single cap) or TBA (multiple caps).

        WWL stays low; ``v_read`` is applied to the listed WBLs and the
        RBL is biased.  Returns the created phase (its ``sense_window``
        is where RSL current should be measured).
        """
        if not caps:
            raise ProtocolError("read requires at least one capacitor")
        for cap in caps:
            if not 0 <= cap < self.n_caps:
                raise ProtocolError(f"capacitor index {cap} out of range")
        tm, lv = self.timing, self.levels
        targets = {"wwl": 0.0, "wpl": 0.0, "rbl": lv.v_rbl}
        for i in range(self.n_caps):
            targets[f"wbl{i + 1}"] = lv.v_read if i in caps else 0.0
        t_settle, t_end = self._transition(targets, dwell=tm.t_read)
        phase = Phase(name=label, t_start=t_settle, t_end=t_end,
                      kind="tba" if len(caps) > 1 else "qnro",
                      meta={"caps": list(caps)})
        self.phases.append(phase)
        self._release_all()
        return phase

    def add_reset(self, label: str = "precharge") -> None:
        """Drain the internal node (the PRECHARGE step)."""
        tm, lv = self.timing, self.levels
        targets = {"wwl": lv.v_wwl, "wpl": 0.0, "rbl": 0.0}
        for i in range(self.n_caps):
            targets[f"wbl{i + 1}"] = 0.0
        t_settle, t_end = self._transition(targets, dwell=tm.t_reset)
        self.phases.append(Phase(name=label, t_start=t_settle, t_end=t_end,
                                 kind="reset"))
        self._release_all()

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    @property
    def t_stop(self) -> float:
        """End time of the schedule (small tail after the last phase)."""
        return self._t + self.timing.t_gap

    def waveforms(self) -> dict[str, PWL]:
        """Render one PWL per net."""
        return {net: PWL(points) for net, points in self._points.items()}

    def phase(self, name: str) -> Phase:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise ProtocolError(f"no phase named {name!r}")
