"""Fast behavioural 2T-nC cell model (no transient solve).

Solves the read-phase charge balance on the internal node directly:

    C_node * V_int = Σ_i [ Q_i(V_wbl,i - V_int, evolved) - Q_i(0, stored) ]

by bisection (the right-hand side is monotone decreasing in ``V_int``),
evolving each capacitor's domain bank over the read dwell at its actual
terminal voltage.  The read transistor then converts ``V_int`` to an RSL
current.  This reproduces the SPICE cell's sense levels to within a few
percent at ~10^4× the speed, enabling Monte-Carlo variation studies and
the measured-device sweeps of Fig. 4(i,j).

Read disturb is physical here too: each read commits the evolved domain
states, so repeated reads of a stored '0' accumulate weak-tail switching
exactly as in the full model.

The charge balance is implemented once, batched: :class:`CellChargeSolver`
bisects an arbitrary batch of (cell instance, stored state) reads
simultaneously — each capacitor population is a row of a
:class:`~repro.ferro.preisach.DomainEnsemble`-style array — so a full
eight-state level sweep of one cell, or of thousands of Monte-Carlo
cells, costs the same ~60 vectorized iterations as a single read.
"""

from __future__ import annotations

import numpy as np

from repro.core.logic import minority3
from repro.core.sense_amp import SenseAmp, reference_between
from repro.errors import ProtocolError
from repro.ferro.dynamics import evolve_states
from repro.ferro.materials import NVDRAM_CAL, FerroMaterial
from repro.ferro.preisach import DomainBank, charge_density
from repro.spice.mosfet import PTM45_NMOS, Mosfet, MosfetParams

__all__ = ["BehavioralCell", "CellChargeSolver", "STATE_ORDER"]

#: the eight stored states '000'..'111' in level-sweep order
STATE_ORDER: tuple[tuple[int, int, int], ...] = tuple(
    (a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1))

#: V_int convergence tolerance (volts).  1 pV is ~5 decades below any
#: physical sense margin; the historical fixed-depth bisection resolved
#: the same bracket to ~1e-19 V in 60 evaluations, the Illinois iteration
#: reaches 1e-12 V in ~10.
_VINT_TOL = 1e-12
#: iteration ceiling (bisection fallback keeps the bracket shrinking, so
#: this is never reached for the monotone charge balance)
_MAX_ITERS = 100


class CellChargeSolver:
    """Batched read-phase charge balance for 2T-nC cell populations.

    Holds the per-capacitor hysteron parameters of a batch of cells as
    arrays of shape ``(..., n_caps, n_domains)`` plus the shared cell
    electricals, and solves reads/level sweeps for every batch element
    simultaneously.  Domain *state* is owned by the caller and passed
    explicitly, so the same solver serves a live single cell (state in
    its :class:`DomainBank` objects) and throwaway Monte-Carlo batches.
    """

    def __init__(self, material: FerroMaterial, va: np.ndarray,
                 weights: np.ndarray, *,
                 tr_params: MosfetParams = PTM45_NMOS,
                 temperature_k: float | None = None,
                 c_node: float = 5e-15,
                 v_write: float = 1.5, t_write: float = 80e-9,
                 v_read: float = 0.75, v_rbl: float = 0.5,
                 t_read: float = 50e-9) -> None:
        if va.shape != weights.shape or va.ndim < 2:
            raise ProtocolError(
                "va/weights must be equal-shape (..., n_caps, n_domains)")
        self.material = material
        self.va = va
        self.weights = weights
        self.n_caps = va.shape[-2]
        self.tr = Mosfet("t_r", "d", "g", "s", tr_params)
        self.c_node = float(c_node)
        self.v_write = float(v_write)
        self.t_write = float(t_write)
        self.v_read = float(v_read)
        self.v_rbl = float(v_rbl)
        self.t_read = float(t_read)
        temperature = (temperature_k if temperature_k is not None
                       else material.t_ref)
        self._ps = material.ps_at(float(temperature))

    @classmethod
    def from_banks(cls, banks: list[DomainBank], **kwargs,
                   ) -> "CellChargeSolver":
        """Solver over one cell's capacitors (batch shape ``()``)."""
        return cls(banks[0].material,
                   np.stack([bank.va for bank in banks]),
                   np.stack([bank.weights for bank in banks]),
                   temperature_k=banks[0].temperature_k, **kwargs)

    # ------------------------------------------------------------------
    # vectorized primitives
    # ------------------------------------------------------------------
    def evolve(self, s: np.ndarray, voltage: np.ndarray | float,
               dt: float) -> np.ndarray:
        """Evolve batched states at per-capacitor voltages (pure)."""
        m = self.material
        return evolve_states(s, voltage, dt, self.va, m.tau0, m.merz_n)

    def charge(self, voltage: np.ndarray | float,
               s: np.ndarray) -> np.ndarray:
        """Per-capacitor device charge (C); result shape ``s.shape[:-1]``."""
        m = self.material
        return charge_density(m, self._ps, self.weights, s,
                              np.asarray(voltage, dtype=float)) * m.area

    # ------------------------------------------------------------------
    # the batched bisection
    # ------------------------------------------------------------------
    def solve_read(self, s: np.ndarray, activated: list[int],
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Bisect the internal-node charge balance for a batch of reads.

        ``s`` has shape ``(..., n_caps, n_domains)``; every leading axis
        is an independent read (cell instance, stored state, ...).
        Returns ``(vint, evolved)`` with shapes ``(...)`` and
        ``s.shape``.
        """
        wbl = np.array([self.v_read if i in activated else 0.0
                        for i in range(self.n_caps)])
        batch = s.shape[:-2]
        n = int(np.prod(batch, dtype=int)) if batch else 1
        s_flat = s.reshape((n,) + s.shape[-2:])
        va_flat = np.broadcast_to(self.va, s.shape).reshape(s_flat.shape)
        w_flat = np.broadcast_to(self.weights, s.shape).reshape(s_flat.shape)
        m = self.material
        q0 = self.charge(np.zeros(self.n_caps), s).reshape(n, self.n_caps)

        def net_charge(vint: np.ndarray, idx: np.ndarray | None,
                       ) -> tuple[np.ndarray, np.ndarray]:
            """Residual for rows ``idx`` (all rows when ``None``)."""
            s_sub = s_flat if idx is None else s_flat[idx]
            va_sub = va_flat if idx is None else va_flat[idx]
            w_sub = w_flat if idx is None else w_flat[idx]
            q0_sub = q0 if idx is None else q0[idx]
            v_cap = wbl - vint[:, None]
            evolved = evolve_states(s_sub, v_cap, self.t_read, va_sub,
                                    m.tau0, m.merz_n)
            q = charge_density(m, self._ps, w_sub, evolved, v_cap) * m.area
            total = -self.c_node * vint + np.sum(q - q0_sub, axis=-1)
            return total, evolved

        lo = np.zeros(n)
        hi = np.full(n, max(self.v_read, 0.1))
        f_lo, _ = net_charge(lo, None)
        f_hi, _ = net_charge(hi, None)
        # Expand upward where the node would settle above v_read (it
        # cannot, physically, but guard the bracket anyway).
        expand = np.nonzero((f_hi > 0) & (hi < 10.0))[0]
        while expand.size:
            hi[expand] *= 2.0
            f_hi[expand], _ = net_charge(hi[expand], expand)
            expand = np.nonzero((f_hi > 0) & (hi < 10.0))[0]
        # The balance is smooth and monotone decreasing in V_int, so a
        # bracket-preserving Illinois (modified regula falsi) iteration
        # converges superlinearly; a midpoint fallback guards degenerate
        # secants so the bracket always shrinks.  Each pass evaluates
        # only the still-unconverged rows, so stragglers do not drag the
        # whole batch through extra device evaluations.
        f_lo_w = f_lo.copy()
        f_hi_w = f_hi.copy()
        side = np.zeros(n, dtype=np.int8)  # +1 kept lo, -1 kept hi
        for _ in range(_MAX_ITERS):
            idx = np.nonzero(hi - lo > _VINT_TOL)[0]
            if not idx.size:
                break
            lo_a, hi_a = lo[idx], hi[idx]
            flo_a, fhi_a = f_lo_w[idx], f_hi_w[idx]
            denom = fhi_a - flo_a
            with np.errstate(divide="ignore", invalid="ignore"):
                x = hi_a - fhi_a * (hi_a - lo_a) / denom
            bad = ~np.isfinite(x) | (x <= lo_a) | (x >= hi_a)
            x = np.where(bad, 0.5 * (lo_a + hi_a), x)
            f_x, _ = net_charge(x, idx)
            above = f_x > 0
            # Illinois: when the same endpoint survives twice running,
            # halve its stored residual to force the secant across.
            side_a = side[idx]
            fhi_new = np.where(above, fhi_a, f_x)
            fhi_new = np.where(above & (side_a == 1), 0.5 * fhi_new,
                               fhi_new)
            flo_new = np.where(above, f_x, flo_a)
            flo_new = np.where(~above & (side_a == -1), 0.5 * flo_new,
                               flo_new)
            lo[idx] = np.where(above, x, lo_a)
            hi[idx] = np.where(above, hi_a, x)
            f_lo_w[idx] = flo_new
            f_hi_w[idx] = fhi_new
            side[idx] = np.where(above, 1, -1).astype(np.int8) * \
                np.where(bad, 0, 1).astype(np.int8)
        vint = 0.5 * (lo + hi)
        # Batch elements whose balance is negative even at V_int = 0
        # clamp there (evolved states then see the full WBL voltages).
        vint = np.where(f_lo < 0, 0.0, vint)
        _, evolved = net_charge(vint, None)
        return vint.reshape(batch), evolved.reshape(s.shape)

    def sense(self, vint: np.ndarray, *, mode: str = "channel",
              ) -> np.ndarray:
        """Convert internal-node voltages into sensed levels.

        ``mode="channel"`` is the on-chip RSL channel current;
        ``mode="charge"`` the probe-station average charging current.
        """
        if mode == "channel":
            return self.tr.ids_array(vint, self.v_rbl)
        if mode == "charge":
            return self.c_node * np.asarray(vint) / self.t_read
        raise ProtocolError("mode must be 'channel' or 'charge'")

    def level_sweep(self, s: np.ndarray, *, mode: str = "channel",
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Sense level per stored state '000'..'111' for a batch of cells.

        Writes the eight states sequentially (matching the write-disturb
        history of per-state programming), then solves all eight reads of
        every batch element in one bisection.  Returns ``(levels,
        s_final)`` where ``levels`` has shape ``(8, ...)`` in
        :data:`STATE_ORDER` and ``s_final`` is the committed state after
        the last write (reads do not commit their disturb).
        """
        post_write = np.empty((len(STATE_ORDER),) + s.shape)
        current = s
        volts = np.zeros(self.n_caps)
        for k, bits in enumerate(STATE_ORDER):
            # Caps beyond the TBA triple stay unbiased (0 V: no update).
            volts[:3] = np.where(np.asarray(bits) > 0, 1.0, -1.0) \
                * self.v_write
            current = self.evolve(current, volts, self.t_write)
            post_write[k] = current
        vint, _ = self.solve_read(post_write, [0, 1, 2])
        return self.sense(vint, mode=mode), current


class BehavioralCell:
    """Closed-form 2T-nC cell for array-scale and variation studies."""

    def __init__(self, n_caps: int = 3, *,
                 material: FerroMaterial = NVDRAM_CAL,
                 tr_params: MosfetParams = PTM45_NMOS,
                 c_node: float = 5e-15,
                 v_write: float = 1.5, t_write: float = 80e-9,
                 v_read: float = 0.75, v_rbl: float = 0.5,
                 t_read: float = 50e-9,
                 temperature_k: float | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if n_caps < 1:
            raise ProtocolError("cell needs at least one capacitor")
        self.n_caps = n_caps
        self.material = material
        self.banks = [DomainBank(material, temperature_k=temperature_k,
                                 rng=rng) for _ in range(n_caps)]
        self._solver = CellChargeSolver.from_banks(
            self.banks, tr_params=tr_params, c_node=c_node,
            v_write=v_write, t_write=t_write, v_read=v_read,
            v_rbl=v_rbl, t_read=t_read)
        self._tr = self._solver.tr
        self.c_node = float(c_node)
        self.v_write = float(v_write)
        self.t_write = float(t_write)
        self.v_read = float(v_read)
        self.v_rbl = float(v_rbl)
        self.t_read = float(t_read)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def _states(self) -> np.ndarray:
        """Committed capacitor states stacked as ``(n_caps, n_domains)``."""
        return np.stack([bank.s for bank in self.banks])

    def _commit_states(self, states: np.ndarray) -> None:
        for bank, state in zip(self.banks, states):
            bank.s = state

    def write(self, bits: dict[int, int]) -> None:
        """Program capacitors by applying the write rail across them."""
        for cap, bit in bits.items():
            if not 0 <= cap < self.n_caps:
                raise ProtocolError(f"capacitor index {cap} out of range")
            if bit not in (0, 1):
                raise ProtocolError("bits must be 0/1")
            sign = 1.0 if bit else -1.0
            self.banks[cap].apply_voltage(sign * self.v_write, self.t_write)

    def stored_bits(self) -> list[int]:
        return [1 if bank.polarization() >= 0 else 0 for bank in self.banks]

    def polarizations_uc_cm2(self) -> list[float]:
        return [bank.polarization() * 1e2 for bank in self.banks]

    # ------------------------------------------------------------------
    # read
    # ------------------------------------------------------------------
    def _charge_balance_vint(self, activated: list[int]) -> tuple[
            float, list[np.ndarray]]:
        """Solve for V_int; returns (vint, evolved states per cap)."""
        vint, evolved = self._solver.solve_read(self._states(), activated)
        return float(vint), list(evolved)

    def qnro_read(self, caps: list[int] | None = None,
                  *, commit_disturb: bool = True) -> tuple[float, float]:
        """Sense the listed capacitors (default: cap 0).

        Returns ``(rsl_current, vint)``.  With ``commit_disturb`` the
        evolved (partially switched) domain states are kept — the
        accumulative QNRO disturb.
        """
        caps = [0] if caps is None else list(caps)
        for cap in caps:
            if not 0 <= cap < self.n_caps:
                raise ProtocolError(f"capacitor index {cap} out of range")
        vint, evolved = self._charge_balance_vint(caps)
        if commit_disturb:
            self._commit_states(evolved)
        current = self._tr.ids(vint, self.v_rbl)
        return float(current), float(vint)

    def tba_read(self, *, commit_disturb: bool = True) -> tuple[float, float]:
        """Triple-bit activation of the first three capacitors."""
        if self.n_caps < 3:
            raise ProtocolError("TBA needs at least 3 capacitors")
        return self.qnro_read([0, 1, 2], commit_disturb=commit_disturb)

    def tba_charge_current(self, *, commit_disturb: bool = False,
                           ) -> tuple[float, float]:
        """Average charging current of a TBA read pulse.

        Probe-station measurements (paper Fig. 4(i)) observe the
        transient current while the read pulse switches the stored-'0'
        capacitors; the time-averaged current is the node charge over
        the pulse width, ``C_node * V_int / t_read`` — exactly linear in
        the switched charge and hence in the number of stored zeros.

        Returns ``(i_avg_amperes, vint)``.
        """
        if self.n_caps < 3:
            raise ProtocolError("TBA needs at least 3 capacitors")
        vint, evolved = self._charge_balance_vint([0, 1, 2])
        if commit_disturb:
            self._commit_states(evolved)
        return self.c_node * vint / self.t_read, vint

    # ------------------------------------------------------------------
    # logic
    # ------------------------------------------------------------------
    def level_sweep(self, *, mode: str = "channel",
                    ) -> dict[tuple[int, int, int], float]:
        """Sense level per stored state '000'..'111' (fresh writes).

        ``mode="channel"`` senses the T_R channel current (the on-chip
        RSL sensing path); ``mode="charge"`` senses the average read-
        pulse charging current (the probe-station measurement of
        Fig. 4(i,j)).  All eight states are solved in one batched
        bisection.
        """
        if mode not in ("channel", "charge"):
            raise ProtocolError("mode must be 'channel' or 'charge'")
        if self.n_caps < 3:
            raise ProtocolError("level sweep needs at least 3 capacitors")
        levels, s_final = self._solver.level_sweep(self._states(), mode=mode)
        self._commit_states(s_final)
        return {state: float(level)
                for state, level in zip(STATE_ORDER, levels)}

    def minority_sense_amp(self, *, offset_sigma: float = 0.0,
                           rng: np.random.Generator | None = None,
                           ) -> SenseAmp:
        """SA referenced between the '001' and '011' levels (paper §IV)."""
        levels = self.level_sweep()
        ref = reference_between(levels[(0, 1, 1)], levels[(0, 0, 1)])
        return SenseAmp(ref, offset_sigma=offset_sigma, rng=rng)

    def op_minority(self, a: int, b: int, c: int,
                    sense_amp: SenseAmp | None = None) -> int:
        """Write (A,B,C), TBA-sense, compare — returns MIN(A,B,C)."""
        if sense_amp is None:
            sense_amp = self.minority_sense_amp()
        self.write({0: a, 1: b, 2: c})
        current, _ = self.tba_read()
        out = sense_amp.compare(current)
        expected = minority3(a, b, c)
        if out != expected:
            # Surface miscompares loudly: callers studying variation can
            # catch ProtocolError and count failures.
            raise ProtocolError(
                f"MINORITY misread for inputs {(a, b, c)}: sensed {out}, "
                f"truth {expected}")
        return out

    def op_nand(self, a: int, b: int,
                sense_amp: SenseAmp | None = None) -> int:
        return self.op_minority(a, b, 0, sense_amp)

    def op_nor(self, a: int, b: int,
               sense_amp: SenseAmp | None = None) -> int:
        return self.op_minority(a, b, 1, sense_amp)
