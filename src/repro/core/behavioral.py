"""Fast behavioural 2T-nC cell model (no transient solve).

Solves the read-phase charge balance on the internal node directly:

    C_node * V_int = Σ_i [ Q_i(V_wbl,i - V_int, evolved) - Q_i(0, stored) ]

by bisection (the right-hand side is monotone decreasing in ``V_int``),
evolving each capacitor's domain bank over the read dwell at its actual
terminal voltage.  The read transistor then converts ``V_int`` to an RSL
current.  This reproduces the SPICE cell's sense levels to within a few
percent at ~10^4× the speed, enabling Monte-Carlo variation studies and
the measured-device sweeps of Fig. 4(i,j).

Read disturb is physical here too: each read commits the evolved domain
states, so repeated reads of a stored '0' accumulate weak-tail switching
exactly as in the full model.
"""

from __future__ import annotations

import numpy as np

from repro.core.logic import minority3
from repro.core.sense_amp import SenseAmp, reference_between
from repro.errors import ProtocolError
from repro.ferro.materials import NVDRAM_CAL, FerroMaterial
from repro.ferro.preisach import DomainBank
from repro.spice.mosfet import PTM45_NMOS, Mosfet, MosfetParams

__all__ = ["BehavioralCell"]


class BehavioralCell:
    """Closed-form 2T-nC cell for array-scale and variation studies."""

    def __init__(self, n_caps: int = 3, *,
                 material: FerroMaterial = NVDRAM_CAL,
                 tr_params: MosfetParams = PTM45_NMOS,
                 c_node: float = 5e-15,
                 v_write: float = 1.5, t_write: float = 80e-9,
                 v_read: float = 0.75, v_rbl: float = 0.5,
                 t_read: float = 50e-9,
                 temperature_k: float | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if n_caps < 1:
            raise ProtocolError("cell needs at least one capacitor")
        self.n_caps = n_caps
        self.material = material
        self.banks = [DomainBank(material, temperature_k=temperature_k,
                                 rng=rng) for _ in range(n_caps)]
        self._tr = Mosfet("t_r", "d", "g", "s", tr_params)
        self.c_node = float(c_node)
        self.v_write = float(v_write)
        self.t_write = float(t_write)
        self.v_read = float(v_read)
        self.v_rbl = float(v_rbl)
        self.t_read = float(t_read)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def write(self, bits: dict[int, int]) -> None:
        """Program capacitors by applying the write rail across them."""
        for cap, bit in bits.items():
            if not 0 <= cap < self.n_caps:
                raise ProtocolError(f"capacitor index {cap} out of range")
            if bit not in (0, 1):
                raise ProtocolError("bits must be 0/1")
            sign = 1.0 if bit else -1.0
            self.banks[cap].apply_voltage(sign * self.v_write, self.t_write)

    def stored_bits(self) -> list[int]:
        return [1 if bank.polarization() >= 0 else 0 for bank in self.banks]

    def polarizations_uc_cm2(self) -> list[float]:
        return [bank.polarization() * 1e2 for bank in self.banks]

    # ------------------------------------------------------------------
    # read
    # ------------------------------------------------------------------
    def _charge_balance_vint(self, activated: list[int]) -> tuple[
            float, list[np.ndarray]]:
        """Solve for V_int; returns (vint, evolved states per cap)."""
        wbl = [self.v_read if i in activated else 0.0
               for i in range(self.n_caps)]
        q0 = [bank.charge(0.0) for bank in self.banks]

        def net_charge(vint: float) -> tuple[float, list[np.ndarray]]:
            total = -self.c_node * vint
            evolved = []
            for i, bank in enumerate(self.banks):
                v_cap = wbl[i] - vint
                state = bank.evolved_state(v_cap, self.t_read)
                evolved.append(state)
                total += bank.charge(v_cap, state) - q0[i]
            return total, evolved

        lo, hi = 0.0, max(self.v_read, 0.1)
        f_lo, _ = net_charge(lo)
        f_hi, _ = net_charge(hi)
        # Expand upward if the node would settle above v_read (it cannot,
        # physically, but guard the bracket anyway).
        while f_hi > 0 and hi < 10.0:
            hi *= 2.0
            f_hi, _ = net_charge(hi)
        if f_lo < 0:
            return 0.0, [bank.evolved_state(wbl[i], self.t_read)
                         for i, bank in enumerate(self.banks)]
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            f_mid, evolved = net_charge(mid)
            if f_mid > 0:
                lo = mid
            else:
                hi = mid
        vint = 0.5 * (lo + hi)
        _, evolved = net_charge(vint)
        return vint, evolved

    def qnro_read(self, caps: list[int] | None = None,
                  *, commit_disturb: bool = True) -> tuple[float, float]:
        """Sense the listed capacitors (default: cap 0).

        Returns ``(rsl_current, vint)``.  With ``commit_disturb`` the
        evolved (partially switched) domain states are kept — the
        accumulative QNRO disturb.
        """
        caps = [0] if caps is None else list(caps)
        for cap in caps:
            if not 0 <= cap < self.n_caps:
                raise ProtocolError(f"capacitor index {cap} out of range")
        vint, evolved = self._charge_balance_vint(caps)
        if commit_disturb:
            for bank, state in zip(self.banks, evolved):
                bank.s = state
        current = self._tr.ids(vint, self.v_rbl)
        return float(current), float(vint)

    def tba_read(self, *, commit_disturb: bool = True) -> tuple[float, float]:
        """Triple-bit activation of the first three capacitors."""
        if self.n_caps < 3:
            raise ProtocolError("TBA needs at least 3 capacitors")
        return self.qnro_read([0, 1, 2], commit_disturb=commit_disturb)

    def tba_charge_current(self, *, commit_disturb: bool = False,
                           ) -> tuple[float, float]:
        """Average charging current of a TBA read pulse.

        Probe-station measurements (paper Fig. 4(i)) observe the
        transient current while the read pulse switches the stored-'0'
        capacitors; the time-averaged current is the node charge over
        the pulse width, ``C_node * V_int / t_read`` — exactly linear in
        the switched charge and hence in the number of stored zeros.

        Returns ``(i_avg_amperes, vint)``.
        """
        if self.n_caps < 3:
            raise ProtocolError("TBA needs at least 3 capacitors")
        vint, evolved = self._charge_balance_vint([0, 1, 2])
        if commit_disturb:
            for bank, state in zip(self.banks, evolved):
                bank.s = state
        return self.c_node * vint / self.t_read, vint

    # ------------------------------------------------------------------
    # logic
    # ------------------------------------------------------------------
    def level_sweep(self, *, mode: str = "channel",
                    ) -> dict[tuple[int, int, int], float]:
        """Sense level per stored state '000'..'111' (fresh writes).

        ``mode="channel"`` senses the T_R channel current (the on-chip
        RSL sensing path); ``mode="charge"`` senses the average read-
        pulse charging current (the probe-station measurement of
        Fig. 4(i,j)).
        """
        if mode not in ("channel", "charge"):
            raise ProtocolError("mode must be 'channel' or 'charge'")
        levels = {}
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    self.write({0: a, 1: b, 2: c})
                    if mode == "channel":
                        current, _ = self.tba_read(commit_disturb=False)
                    else:
                        current, _ = self.tba_charge_current()
                    levels[(a, b, c)] = current
        return levels

    def minority_sense_amp(self, *, offset_sigma: float = 0.0,
                           rng: np.random.Generator | None = None,
                           ) -> SenseAmp:
        """SA referenced between the '001' and '011' levels (paper §IV)."""
        levels = self.level_sweep()
        ref = reference_between(levels[(0, 1, 1)], levels[(0, 0, 1)])
        return SenseAmp(ref, offset_sigma=offset_sigma, rng=rng)

    def op_minority(self, a: int, b: int, c: int,
                    sense_amp: SenseAmp | None = None) -> int:
        """Write (A,B,C), TBA-sense, compare — returns MIN(A,B,C)."""
        if sense_amp is None:
            sense_amp = self.minority_sense_amp()
        self.write({0: a, 1: b, 2: c})
        current, _ = self.tba_read()
        out = sense_amp.compare(current)
        expected = minority3(a, b, c)
        if out != expected:
            # Surface miscompares loudly: callers studying variation can
            # catch ProtocolError and count failures.
            raise ProtocolError(
                f"MINORITY misread for inputs {(a, b, c)}: sensed {out}, "
                f"truth {expected}")
        return out

    def op_nand(self, a: int, b: int,
                sense_amp: SenseAmp | None = None) -> int:
        return self.op_minority(a, b, 0, sense_amp)

    def op_nor(self, a: int, b: int,
               sense_amp: SenseAmp | None = None) -> int:
        return self.op_minority(a, b, 1, sense_amp)
