"""Monte-Carlo variation analysis of the 2T-nC sense margins.

The FeCap model the paper calibrates against "accurately captures ...
device performance scaling, variation, stochastic switching" — this
module exercises that capability at the cell level: device-to-device
coercive-voltage variation (random hysteron sampling per cell) combined
with sense-amplifier input offset, yielding margin distributions and
read-yield estimates for the NOT and MINORITY operations.

This extends the paper's reliability story ("robust reliability",
"reliable MINORITY function implementation") with the quantitative
margin analysis a memory designer would run before committing the
design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.behavioral import STATE_ORDER, BehavioralCell, CellChargeSolver
from repro.core.logic import minority3
from repro.core.sense_amp import reference_between
from repro.errors import ProtocolError
from repro.ferro.materials import NVDRAM_CAL, FerroMaterial
from repro.ferro.preisach import DomainBank
from repro.spice.mosfet import PTM45_NMOS, MosfetParams

__all__ = ["MarginSample", "VariationStudy", "run_variation_study"]


@dataclass(frozen=True)
class MarginSample:
    """Sense levels of one Monte-Carlo cell instance."""

    levels: dict[tuple[int, int, int], float]

    def worst_minority_margin(self, reference: float) -> float:
        """Smallest |level − reference| over the eight states, signed
        negative if any state falls on the wrong side."""
        worst = float("inf")
        for state, level in self.levels.items():
            want_high = minority3(*state) == 1
            margin = (level - reference) if want_high \
                else (reference - level)
            worst = min(worst, margin)
        return worst


@dataclass
class VariationStudy:
    """Aggregate results of a Monte-Carlo sweep."""

    samples: list[MarginSample]
    reference: float
    offset_sigma: float
    failures: int = 0
    margins: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def n_cells(self) -> int:
        return len(self.samples)

    @property
    def read_yield(self) -> float:
        """Fraction of cells whose worst-case margin survives a 3-sigma
        SA offset."""
        if not self.samples:
            return 0.0
        guard = 3.0 * self.offset_sigma
        return float(np.mean(self.margins > guard))

    @property
    def margin_mean(self) -> float:
        return float(self.margins.mean()) if self.margins.size else 0.0

    @property
    def margin_sigma(self) -> float:
        return float(self.margins.std()) if self.margins.size else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "n_cells": float(self.n_cells),
            "reference_a": self.reference,
            "margin_mean_a": self.margin_mean,
            "margin_sigma_a": self.margin_sigma,
            "hard_failures": float(self.failures),
            "read_yield": self.read_yield,
        }


#: hysteron count for variation studies: a 0.015 µm² MFM at ~8 nm grain
#: size carries a few hundred grains, so per-device tail statistics are
#: Poisson over ~hundreds — far tighter than the 48-hysteron default
#: used for fast nominal simulation.
VARIATION_N_DOMAINS = 256


def run_variation_study(n_cells: int = 50, *,
                        material: FerroMaterial = NVDRAM_CAL,
                        tr_params: MosfetParams = PTM45_NMOS,
                        offset_sigma_fraction: float = 0.05,
                        reference_mode: str = "tracking",
                        n_domains: int | None = None,
                        seed: int = 0) -> VariationStudy:
    """Monte-Carlo MINORITY margin study over cell instances.

    Each instance draws its own hysteron population (device-to-device
    Vc variation at realistic grain counts).  Two reference disciplines:

    * ``"tracking"`` (default) — the SA reference comes from co-located
      reference cells that share the instance's process corner, the
      standard design practice for current-sensed memories; margins are
      measured against the instance's own '001'/'011' levels.
    * ``"global"`` — one reference trimmed on the nominal device for the
      whole array; quantifies how much tracking references matter.

    ``offset_sigma_fraction`` sets the SA input-referred offset sigma as
    a fraction of the nominal '001'/'011' level gap.
    """
    if n_cells < 1:
        raise ProtocolError("need at least one cell")
    if not 0 <= offset_sigma_fraction < 1:
        raise ProtocolError("offset_sigma_fraction must be in [0, 1)")
    if reference_mode not in ("tracking", "global"):
        raise ProtocolError("reference_mode must be tracking or global")
    material = material.scaled(
        n_domains=n_domains if n_domains is not None
        else VARIATION_N_DOMAINS)
    nominal = BehavioralCell(n_caps=3, material=material,
                             tr_params=tr_params)
    nominal_levels = nominal.level_sweep()
    global_reference = reference_between(nominal_levels[(0, 1, 1)],
                                         nominal_levels[(0, 0, 1)])
    gap = abs(nominal_levels[(0, 0, 1)] - nominal_levels[(0, 1, 1)])
    offset_sigma = offset_sigma_fraction * gap

    # Draw every instance's hysteron population with the same per-cell
    # generator discipline a sequential study would use, then stack the
    # whole Monte-Carlo batch into (n_cells, n_caps, n_domains) arrays
    # and solve all cells' level sweeps in one batched bisection.
    rng = np.random.default_rng(seed)
    banks: list[DomainBank] = []
    for _ in range(n_cells):
        cell_rng = np.random.default_rng(rng.integers(2**32))
        banks.extend(DomainBank(material, rng=cell_rng) for _ in range(3))
    n_domains_eff = material.n_domains
    solver = CellChargeSolver(
        material,
        np.stack([bank.va for bank in banks]).reshape(
            n_cells, 3, n_domains_eff),
        np.stack([bank.weights for bank in banks]).reshape(
            n_cells, 3, n_domains_eff),
        tr_params=tr_params)
    s0 = np.stack([bank.s for bank in banks]).reshape(
        n_cells, 3, n_domains_eff)
    level_array, _ = solver.level_sweep(s0)  # (8, n_cells)

    samples: list[MarginSample] = []
    margins = np.empty(n_cells)
    failures = 0
    for k in range(n_cells):
        sample = MarginSample({state: float(level_array[j, k])
                               for j, state in enumerate(STATE_ORDER)})
        samples.append(sample)
        if reference_mode == "tracking":
            reference = reference_between(sample.levels[(0, 1, 1)],
                                          sample.levels[(0, 0, 1)])
        else:
            reference = global_reference
        margin = sample.worst_minority_margin(reference)
        margins[k] = margin
        if margin <= 0:
            failures += 1
    return VariationStudy(samples=samples, reference=global_reference,
                          offset_sigma=offset_sigma, failures=failures,
                          margins=margins)
