"""The paper's contribution: single-cell universal logic-in-memory in
2T-nC FeRAM with quasi-nondestructive (inverting) readout.

* :class:`~repro.core.cell.TwoTnCCell` — SPICE-level cell netlist;
* :class:`~repro.core.operations.CellOperations` — write / QNRO read /
  NOT / MINORITY / NAND / NOR protocol driver;
* :class:`~repro.core.behavioral.BehavioralCell` — closed-form cell for
  Monte-Carlo and measured-device sweeps;
* :mod:`~repro.core.logic` — MINORITY/MAJORITY truth logic, scalar and
  packed-word forms.
"""

from repro.core.behavioral import BehavioralCell
from repro.core.cell import OneT1CFeRAMCell, TwoTnCCell
from repro.core.logic import (
    majority3,
    majority_words,
    minority3,
    minority_truth_table,
    minority_words,
    nand2,
    nand_words,
    nor2,
    nor_words,
    not1,
    not_words,
)
from repro.core.operations import CellOperations, OperationResult
from repro.core.sense_amp import SenseAmp, reference_between
from repro.core.variation import (
    MarginSample,
    VariationStudy,
    run_variation_study,
)
from repro.core.waveforms import CellLevels, CellSchedule, CellTiming, Phase

__all__ = [
    "TwoTnCCell",
    "OneT1CFeRAMCell",
    "BehavioralCell",
    "CellOperations",
    "OperationResult",
    "SenseAmp",
    "reference_between",
    "MarginSample",
    "VariationStudy",
    "run_variation_study",
    "CellSchedule",
    "CellTiming",
    "CellLevels",
    "Phase",
    "majority3",
    "minority3",
    "nand2",
    "nor2",
    "not1",
    "minority_truth_table",
    "majority_words",
    "minority_words",
    "nand_words",
    "nor_words",
    "not_words",
]
