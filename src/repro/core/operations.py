"""High-level 2T-nC cell operations: write, QNRO read, NOT, MINORITY.

Every operation builds a protocol schedule, runs the cell's transient
simulation and senses the RSL current in the read phase's settled window.
Results carry the full traces so experiments can plot the paper's
waveforms (Fig. 3(d,f)) directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cell import TwoTnCCell
from repro.core.logic import minority3, not1
from repro.core.sense_amp import SenseAmp, reference_between
from repro.core.waveforms import CellLevels, CellTiming
from repro.errors import ProtocolError
from repro.spice.analysis import TransientResult

__all__ = ["OperationResult", "CellOperations"]


@dataclass
class OperationResult:
    """Outcome of one cell operation.

    Attributes
    ----------
    output_bit:
        The SA decision (None for pure writes).
    rsl_current:
        Settled-window average RSL current in amperes (None for writes).
    vint:
        Settled-window average internal-node voltage (None for writes).
    bits_before / bits_after:
        Committed capacitor states around the operation.
    p_before / p_after:
        Polarizations (µC/cm²) around the operation.
    result:
        Full transient traces.
    expected:
        Truth-table expectation for logic ops (None for writes/reads).
    """

    output_bit: int | None
    rsl_current: float | None
    vint: float | None
    bits_before: list[int]
    bits_after: list[int]
    p_before: list[float]
    p_after: list[float]
    result: TransientResult
    expected: int | None = None
    meta: dict = field(default_factory=dict)

    @property
    def correct(self) -> bool | None:
        """Whether the SA output matched the truth table (None if n/a)."""
        if self.output_bit is None or self.expected is None:
            return None
        return self.output_bit == self.expected

    def state_preserved(self, *, tolerance_uc_cm2: float = 8.0) -> bool:
        """Quasi-nondestructive check: no capacitor moved more than
        ``tolerance_uc_cm2`` during the operation (paper Fig. 3(d): the
        initial state "remains fairly intact after readout")."""
        return all(abs(a - b) <= tolerance_uc_cm2
                   for a, b in zip(self.p_after, self.p_before))


class CellOperations:
    """Protocol driver bound to one :class:`TwoTnCCell`.

    Parameters
    ----------
    cell:
        The cell to operate on.
    timing / levels:
        Protocol parameters shared by all operations.
    dt:
        Transient step size.
    sense_fraction:
        Trailing fraction of the read dwell used for current averaging.
    """

    def __init__(self, cell: TwoTnCCell, *,
                 timing: CellTiming | None = None,
                 levels: CellLevels | None = None,
                 dt: float = 5e-10, sense_fraction: float = 0.4) -> None:
        self.cell = cell
        self.timing = timing or CellTiming()
        self.levels = levels or CellLevels()
        self.dt = dt
        self.sense_fraction = sense_fraction
        self._not_reference: float | None = None
        self._minority_reference: float | None = None

    # ------------------------------------------------------------------
    # primitive runs
    # ------------------------------------------------------------------
    def _snapshot(self) -> tuple[list[int], list[float]]:
        return self.cell.stored_bits(), self.cell.polarizations_uc_cm2()

    def _run_schedule(self, build) -> tuple[TransientResult, object]:
        schedule = self.cell.new_schedule(timing=self.timing,
                                          levels=self.levels)
        read_phase = build(schedule)
        result = self.cell.run(schedule, dt=self.dt)
        return result, read_phase

    def write_bits(self, bits: dict[int, int]) -> OperationResult:
        """Program the given ``{cap: bit}`` map through T_W."""
        bits_before, p_before = self._snapshot()
        result, _ = self._run_schedule(
            lambda s: s.add_write(bits) or None)
        bits_after, p_after = self._snapshot()
        for cap, bit in bits.items():
            if bits_after[cap] != bit:
                raise ProtocolError(
                    f"write failed on capacitor {cap}: wanted {bit}, "
                    f"polarization is {p_after[cap]:.1f} µC/cm²")
        return OperationResult(None, None, None, bits_before, bits_after,
                               p_before, p_after, result)

    def _sensed_read(self, caps: list[int], *, write_first:
                     dict[int, int] | None = None,
                     ) -> tuple[OperationResult, float]:
        # Writes run as a separate transient so the before/after snapshots
        # bracket the *read* — making `state_preserved` measure exactly the
        # paper's quasi-nondestructiveness claim.
        if write_first:
            self.write_bits(write_first)
        bits_before, p_before = self._snapshot()

        def build(schedule):
            phase = schedule.add_read(caps)
            schedule.add_reset()
            return phase

        result, phase = self._run_schedule(build)
        t0, t1 = phase.sense_window(self.sense_fraction)
        current = result.mean_in_window(self.cell.rsl_current(result), t0, t1)
        vint = result.mean_in_window(result.v("vint"), t0, t1)
        bits_after, p_after = self._snapshot()
        op = OperationResult(None, current, vint, bits_before, bits_after,
                             p_before, p_after, result,
                             meta={"sense_window": (t0, t1)})
        return op, current

    def qnro_read(self, cap: int = 0) -> OperationResult:
        """Single-capacitor QNRO read; no SA decision attached."""
        op, _ = self._sensed_read([cap])
        return op

    # ------------------------------------------------------------------
    # references
    # ------------------------------------------------------------------
    def calibrate_not_reference(self, cap: int = 0) -> float:
        """Reference between the stored-'0' and stored-'1' RSL levels."""
        levels = {}
        for bit in (0, 1):
            self.cell.force_bits({cap: bit})
            _, current = self._sensed_read([cap])
            self.cell.force_bits({cap: bit})  # undo read disturb
            levels[bit] = current
        self._not_reference = reference_between(levels[1], levels[0])
        return self._not_reference

    def calibrate_minority_reference(self, caps: tuple[int, int, int] =
                                     (0, 1, 2)) -> float:
        """Reference between the '001' and '011' TBA levels (paper §IV)."""
        if self.cell.n_caps < 3:
            raise ProtocolError("MINORITY needs a 2T-3C (or larger) cell")
        levels = []
        for state in ((0, 0, 1), (0, 1, 1)):
            self.cell.force_bits(dict(zip(caps, state)))
            _, current = self._sensed_read(list(caps))
            levels.append(current)
        self._minority_reference = reference_between(levels[0], levels[1])
        return self._minority_reference

    # ------------------------------------------------------------------
    # logic operations
    # ------------------------------------------------------------------
    def op_not(self, bit: int, *, cap: int = 0,
               sense_amp: SenseAmp | None = None) -> OperationResult:
        """Paper §III-B: write ``bit`` then QNRO-read; the SA output is
        the inverted bit, and the stored state survives."""
        if bit not in (0, 1):
            raise ProtocolError("bit must be 0 or 1")
        if sense_amp is None:
            if self._not_reference is None:
                self.calibrate_not_reference(cap)
            sense_amp = SenseAmp(self._not_reference)
        op, current = self._sensed_read([cap], write_first={cap: bit})
        op.output_bit = sense_amp.compare(current)
        op.expected = not1(bit)
        return op

    def op_minority(self, a: int, b: int, c: int, *,
                    caps: tuple[int, int, int] = (0, 1, 2),
                    sense_amp: SenseAmp | None = None) -> OperationResult:
        """Paper §III-C: write (A,B,C), then Triple-Bit-Activation.

        The RSL current rises with the number of stored zeros; the SA
        (referenced between '001' and '011') outputs MIN(A,B,C).
        """
        for name, value in (("a", a), ("b", b), ("c", c)):
            if value not in (0, 1):
                raise ProtocolError(f"{name} must be 0 or 1")
        if self.cell.n_caps < 3:
            raise ProtocolError("MINORITY needs a 2T-3C (or larger) cell")
        if sense_amp is None:
            if self._minority_reference is None:
                self.calibrate_minority_reference(caps)
            sense_amp = SenseAmp(self._minority_reference)
        write_map = dict(zip(caps, (a, b, c)))
        op, current = self._sensed_read(list(caps), write_first=write_map)
        op.output_bit = sense_amp.compare(current)
        op.expected = minority3(a, b, c)
        op.meta["inputs"] = (a, b, c)
        return op

    def op_nand(self, a: int, b: int, **kwargs) -> OperationResult:
        """NAND(A, B) = MIN(A, B, 0) — control capacitor stores 0."""
        return self.op_minority(a, b, 0, **kwargs)

    def op_nor(self, a: int, b: int, **kwargs) -> OperationResult:
        """NOR(A, B) = MIN(A, B, 1) — control capacitor stores 1."""
        return self.op_minority(a, b, 1, **kwargs)

    def tba_level_sweep(self, *, caps: tuple[int, int, int] = (0, 1, 2),
                        ) -> dict[tuple[int, int, int], float]:
        """RSL current for every stored state '000'..'111' (Fig. 3(f) /
        Fig. 4(i,j) data)."""
        levels = {}
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    self.cell.force_bits(dict(zip(caps, (a, b, c))))
                    _, current = self._sensed_read(list(caps))
                    levels[(a, b, c)] = current
        return levels
