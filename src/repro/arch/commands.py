"""Row-level command vocabulary and cost accounting.

Commands are the atoms the engines issue; each carries an energy and a
cycle cost taken from the :class:`~repro.arch.spec.MemorySpec`, times a
``repeat`` multiplier (bulk operations across R rows issue one command
record with ``repeat = R`` rather than R records — essential for the
1 GB counting-mode runs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.arch.spec import MemorySpec
from repro.errors import ArchitectureError

__all__ = ["CommandType", "Command", "command_cost", "Stats"]


class CommandType(enum.Enum):
    """Row-level command phases."""

    ACTIVATE = "act"            # single-row activate (QNRO read / DRAM ACT)
    ACTIVATE_TRA = "act_tra"    # DRAM triple-row activation (majority)
    ACTIVATE_TBA = "act_tba"    # FeRAM triple-bit activation (minority)
    COPY = "copy"               # FeRAM tri-state-buffer row copy / 2nd ACT
    PRECHARGE = "pre"
    ROW_WRITE = "row_write"     # host / control-row programming
    ROW_READ = "row_read"       # host readout
    REFRESH = "refresh"         # one-row refresh (ACT+PRE)


#: Accounting category per command type (stats aggregation).
_CATEGORY = {
    CommandType.ACTIVATE: "compute",
    CommandType.ACTIVATE_TRA: "compute",
    CommandType.ACTIVATE_TBA: "compute",
    CommandType.COPY: "compute",
    CommandType.PRECHARGE: "compute",
    CommandType.ROW_WRITE: "io",
    CommandType.ROW_READ: "io",
    CommandType.REFRESH: "refresh",
}


def command_cost(spec: MemorySpec, ctype: CommandType) -> tuple[float, int]:
    """(energy_joules, cycles) of one command of the given type."""
    if ctype in (CommandType.ACTIVATE, CommandType.ACTIVATE_TRA,
                 CommandType.ACTIVATE_TBA):
        return spec.e_activate, spec.t_activate
    if ctype is CommandType.COPY:
        return spec.e_copy, spec.t_copy
    if ctype is CommandType.PRECHARGE:
        return spec.e_precharge, spec.t_precharge
    if ctype is CommandType.ROW_WRITE:
        return spec.e_row_write, 1
    if ctype is CommandType.ROW_READ:
        return spec.e_row_read, 1
    if ctype is CommandType.REFRESH:
        return spec.refresh_row_energy, spec.t_activate + spec.t_precharge
    raise ArchitectureError(f"unknown command type {ctype!r}")


@dataclass(frozen=True)
class Command:
    """One (possibly bulk-repeated) row command."""

    ctype: CommandType
    repeat: int = 1
    tag: str = ""

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ArchitectureError("repeat must be >= 1")


@dataclass
class Stats:
    """Energy / cycle ledger of an engine run.

    Energy is split into categories: ``compute`` (logic primitives and
    their staging), ``io`` (host loads/stores and control-row writes) and
    ``refresh``.  ``counts`` tracks command-type totals (repeat-weighted).
    """

    energy_j: dict[str, float] = field(default_factory=lambda: {
        "compute": 0.0, "io": 0.0, "refresh": 0.0})
    cycles: dict[str, int] = field(default_factory=lambda: {
        "compute": 0, "io": 0, "refresh": 0})
    counts: dict[CommandType, int] = field(default_factory=dict)
    staging_aaps: int = 0
    relocation_acps: int = 0
    control_rewrites: int = 0

    def record(self, spec: MemorySpec, command: Command,
               *, category: str | None = None) -> None:
        energy, cycles = command_cost(spec, command.ctype)
        cat = category or _CATEGORY[command.ctype]
        self.energy_j[cat] = self.energy_j.get(cat, 0.0) \
            + energy * command.repeat
        self.cycles[cat] = self.cycles.get(cat, 0) + cycles * command.repeat
        self.counts[command.ctype] = self.counts.get(command.ctype, 0) \
            + command.repeat

    # ------------------------------------------------------------------
    @property
    def total_energy_j(self) -> float:
        return sum(self.energy_j.values())

    @property
    def total_cycles(self) -> int:
        return sum(self.cycles.values())

    def wall_time_s(self, spec: MemorySpec) -> float:
        return self.total_cycles * spec.cycle_time_s

    def copy(self) -> "Stats":
        """Snapshot of the ledger (used for per-query attribution)."""
        snap = Stats()
        snap.energy_j = dict(self.energy_j)
        snap.cycles = dict(self.cycles)
        snap.counts = dict(self.counts)
        snap.staging_aaps = self.staging_aaps
        snap.relocation_acps = self.relocation_acps
        snap.control_rewrites = self.control_rewrites
        return snap

    def minus(self, before: "Stats") -> "Stats":
        """Ledger delta since a :meth:`copy` snapshot — what one query
        cost on an engine that keeps running."""
        delta = Stats()
        for key in set(self.energy_j) | set(before.energy_j):
            delta.energy_j[key] = self.energy_j.get(key, 0.0) \
                - before.energy_j.get(key, 0.0)
        for key in set(self.cycles) | set(before.cycles):
            delta.cycles[key] = self.cycles.get(key, 0) \
                - before.cycles.get(key, 0)
        for ctype in set(self.counts) | set(before.counts):
            count = self.counts.get(ctype, 0) - before.counts.get(ctype, 0)
            if count:
                delta.counts[ctype] = count
        delta.staging_aaps = self.staging_aaps - before.staging_aaps
        delta.relocation_acps = self.relocation_acps \
            - before.relocation_acps
        delta.control_rewrites = self.control_rewrites \
            - before.control_rewrites
        return delta

    def iadd(self, other: "Stats") -> "Stats":
        """In-place accumulate another ledger (hot-path merge)."""
        for key, value in other.energy_j.items():
            self.energy_j[key] = self.energy_j.get(key, 0.0) + value
        for key, cyc in other.cycles.items():
            self.cycles[key] = self.cycles.get(key, 0) + cyc
        for ctype, count in other.counts.items():
            self.counts[ctype] = self.counts.get(ctype, 0) + count
        self.staging_aaps += other.staging_aaps
        self.relocation_acps += other.relocation_acps
        self.control_rewrites += other.control_rewrites
        return self

    def iadd_scaled(self, other: "Stats", k: int) -> "Stats":
        """Accumulate ``other`` ``k`` times in one pass — the cost of
        ``k`` identical shards (same row count and TBA offset) without
        ``k`` separate merges."""
        for key, value in other.energy_j.items():
            self.energy_j[key] = self.energy_j.get(key, 0.0) + value * k
        for key, cyc in other.cycles.items():
            self.cycles[key] = self.cycles.get(key, 0) + cyc * k
        for ctype, count in other.counts.items():
            self.counts[ctype] = self.counts.get(ctype, 0) + count * k
        self.staging_aaps += other.staging_aaps * k
        self.relocation_acps += other.relocation_acps * k
        self.control_rewrites += other.control_rewrites * k
        return self

    def merged_with(self, other: "Stats") -> "Stats":
        """New Stats combining two ledgers."""
        return self.copy().iadd(other)

    def allclose(self, other: "Stats", *, rel_tol: float = 1e-9,
                 abs_tol: float = 1e-15) -> bool:
        """Field-for-field equality with float tolerance on energies.

        Command counts, cycles and the integer side-counters
        (staging/relocation/control) must match **exactly**; energy
        totals are floating-point accumulations whose grouping differs
        between a per-op replay and the closed-form coster, so they
        compare with ``math.isclose`` at a tight tolerance.
        """
        import math

        if self.cycles != other.cycles:
            return False
        if {k: v for k, v in self.counts.items() if v} != \
                {k: v for k, v in other.counts.items() if v}:
            return False
        if (self.staging_aaps, self.relocation_acps,
                self.control_rewrites) != \
                (other.staging_aaps, other.relocation_acps,
                 other.control_rewrites):
            return False
        for key in set(self.energy_j) | set(other.energy_j):
            if not math.isclose(self.energy_j.get(key, 0.0),
                                other.energy_j.get(key, 0.0),
                                rel_tol=rel_tol, abs_tol=abs_tol):
                return False
        return True

    def summary(self) -> dict[str, float]:
        """Flat report dictionary (used by the fig-6 table printer)."""
        return {
            "energy_total_nj": self.total_energy_j * 1e9,
            "energy_compute_nj": self.energy_j.get("compute", 0.0) * 1e9,
            "energy_io_nj": self.energy_j.get("io", 0.0) * 1e9,
            "energy_refresh_nj": self.energy_j.get("refresh", 0.0) * 1e9,
            "cycles_total": float(self.total_cycles),
            "cycles_compute": float(self.cycles.get("compute", 0)),
            "cycles_refresh": float(self.cycles.get("refresh", 0)),
        }
