"""Memory-technology specifications for the bulk-bitwise simulator.

The paper's evaluation (§VI) fixes: 8 GB memory, 8 KB rows, ACTIVATE
energy 22.6 nJ (DRAM) / 16.6 nJ (2T-nC FeRAM) per row, PRECHARGE 0.32 nJ
per row, uniform 1-cycle latency per command phase, and a 64 ms DRAM
refresh interval.  The calibrated scalars live in the component
estimator registry (:mod:`repro.arch.components`) and the default
specs below are *assembled* from per-component estimators — this
module keeps the structural differences: DRAM logic ops use the Ambit
AAP (ACTIVATE-ACTIVATE-PRECHARGE) primitive with destructive
triple-row activation, while 2T-nC FeRAM uses the ACP
(ACTIVATE-COPY-PRECHARGE) primitive with in-place, quasi-nondestructive
TBA.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ArchitectureError

__all__ = ["MemorySpec", "DRAM_8GB", "FERAM_2TNC_8GB", "StagingPolicy"]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


class StagingPolicy:
    """How DRAM operand staging is accounted (see DESIGN.md §5).

    * ``PAPER`` — the paper's literal description: every logic op is one
      AAP; no staging copies.  Matches the 22.6-vs-16.6 primitive-level
      energy comparison.
    * ``STAGED`` — one amortized RowClone AAP per logic op for moving an
      operand into the designated TRA rows (destructive reads force
      copies).  This reproduces the paper's ~2× cycle gap.
    * ``AMBIT`` — the faithful Ambit sequences: AND/OR = 4 AAPs
      (2 operand copies + control-row init + TRA), NOT = 2 AAPs via the
      dual-contact cell.
    """

    PAPER = "paper"
    STAGED = "staged"
    AMBIT = "ambit"

    ALL = (PAPER, STAGED, AMBIT)


@dataclass(frozen=True)
class MemorySpec:
    """Geometry, energy and timing parameters of one memory technology.

    Energies are joules per *row* command; latencies are cycles (the
    paper assumes one cycle per command phase uniformly).
    """

    name: str
    technology: str               # "dram" | "feram-2tnc"
    capacity_bytes: int
    row_bytes: int
    n_banks: int
    n_planes: int                 # capacitors per cell (1 for DRAM)
    e_activate: float
    e_precharge: float
    e_copy: float                 # COPY phase (FeRAM) / 2nd ACT (DRAM)
    e_row_write: float            # host/control row write
    e_row_read: float             # host row readout
    cycle_time_s: float = 50e-9
    t_activate: int = 1
    t_precharge: int = 1
    t_copy: int = 1
    refresh_interval_s: float | None = None
    staging_policy: str = StagingPolicy.PAPER
    control_rewrite_period: int = 32   # TBA reads per control-row rewrite
    #: the component estimators this spec was assembled from (None for
    #: hand-written specs); excluded from equality/hash so assembled
    #: specs compare by their physical parameters alone
    components: tuple | None = field(default=None, compare=False,
                                     repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.row_bytes <= 0:
            raise ArchitectureError("capacity and row size must be positive")
        if self.capacity_bytes % self.row_bytes:
            raise ArchitectureError("capacity must be a whole number of rows")
        if self.n_banks < 1 or self.n_planes < 1:
            raise ArchitectureError("need at least one bank and one plane")
        if self.staging_policy not in StagingPolicy.ALL:
            raise ArchitectureError(
                f"unknown staging policy {self.staging_policy!r}")
        if min(self.e_activate, self.e_precharge, self.e_copy,
               self.e_row_write, self.e_row_read) < 0:
            raise ArchitectureError("energies must be non-negative")
        if self.control_rewrite_period < 1:
            raise ArchitectureError("control_rewrite_period must be >= 1")

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Total physical rows (cell rows; planes share a row)."""
        return self.capacity_bytes // (self.row_bytes * self.n_planes)

    @property
    def rows_per_bank(self) -> int:
        return self.n_rows // self.n_banks

    @property
    def row_bits(self) -> int:
        return self.row_bytes * 8

    @property
    def aap_energy(self) -> float:
        """One AAP: ACT(TRA) + ACT(RowClone) + PRE."""
        return self.e_activate + self.e_copy + self.e_precharge

    @property
    def aap_cycles(self) -> int:
        return self.t_activate + self.t_activate + self.t_precharge

    @property
    def acp_energy(self) -> float:
        """One ACP: ACT(TBA) + COPY + PRE."""
        return self.e_activate + self.e_copy + self.e_precharge

    @property
    def acp_cycles(self) -> int:
        return self.t_activate + self.t_copy + self.t_precharge

    @property
    def refresh_row_energy(self) -> float:
        """Refreshing one row: activate + precharge."""
        return self.e_activate + self.e_precharge

    # ------------------------------------------------------------------
    # costed-plan table (DRAM staging-policy expansion)
    # ------------------------------------------------------------------
    # One source of truth for "how many AAPs does one abstract charge
    # event expand to" — shared by the DRAM engine's replay charging
    # and the closed-form plan coster in ``repro.arch.primitives``.

    @property
    def staging_aaps_per_logic(self) -> int:
        """Staging AAPs charged before each DRAM logic primitive."""
        return {StagingPolicy.PAPER: 0, StagingPolicy.STAGED: 1,
                StagingPolicy.AMBIT: 3}[self.staging_policy]

    @property
    def aaps_per_logic(self) -> int:
        """Total AAPs per DRAM logic primitive (staging + compute)."""
        return self.staging_aaps_per_logic + 1

    @property
    def aaps_per_not(self) -> int:
        """AAPs per materialized DRAM NOT (DCC copy + negated read)."""
        return 1 if self.staging_policy == StagingPolicy.PAPER else 2

    def with_policy(self, policy: str) -> "MemorySpec":
        """Copy of this spec under a different staging policy."""
        return replace(self, staging_policy=policy)

    def scaled(self, **overrides) -> "MemorySpec":
        # A parameter override invalidates the assembled breakdown:
        # drop the component list unless the caller re-supplies one.
        overrides.setdefault("components", None)
        return replace(self, **overrides)


# Imported here (not at the top) because the assembler constructs
# MemorySpec instances: whichever module loads first, the class above
# is fully defined before the assembler needs it.
from repro.arch.components.assemble import paper_memory_spec  # noqa: E402

#: The paper's DRAM baseline: 8 GB, 8 KB rows, Ambit AAP primitives,
#: 64 ms refresh, assembled from the DRAM component estimators.  The
#: second ACTIVATE of an AAP (the RowClone) costs a full row
#: activation.
DRAM_8GB = paper_memory_spec("dram")

#: The paper's 2T-nC FeRAM: same geometry, QNRO activation at 16.6 nJ,
#: in-place TBA logic, no refresh, assembled from the 2T-nC component
#: estimators.  Each cell row carries n = 3 planes.  The COPY/write
#: energy exceeds the QNRO activate: reading avoids full polarization
#: reversal (the paper's low-energy mechanism), while the destination
#: write must fully program the FE capacitors through *two* driven
#: rails (complementary WBL/WPL) plus the boosted WWL.  The 16.6/28 nJ
#: split is derived bottom-up in ``repro.experiments.energy_params``.
FERAM_2TNC_8GB = paper_memory_spec("feram-2tnc")
