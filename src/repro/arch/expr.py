"""Logic-expression AST, optimizer and compiler for the bulk engines.

Multi-term bulk-bitwise queries (bitmap indexes, set algebra, masked
predicates) are written as expressions over named columns::

    hits = parse("(c0 & c1 & ~c2) | (c3 & c4 & c5)")
    program = compile_for(engine, hits)
    result = program.run(engine, columns)

Naive op chaining pays hidden flag-materialization NOTs whenever the
complement flags of two operands disagree (the engines charge one
materialized NOT per mismatch), and recomputes repeated sub-terms.  The
compiler removes both costs:

* **canonicalization** — the AST is lowered to a hash-consed
  and-inverter graph (AIG): NOTs become edge attributes (double-NOT
  elimination is inherent), OR/NAND/NOR are De-Morganed onto the native
  AND/MIN primitive, constants fold, idempotent/contradictory terms
  collapse, and structurally equal sub-expressions share one node
  (common-subexpression elimination).  Commutative operands sort by a
  content key, so ``a & b`` and ``b & a`` compile — and cache — alike.
* **parity planning** — a dynamic program assigns each node the
  complement-flag parity that minimizes materialized NOTs, exploiting
  the technologies' flag algebra (FeRAM's inverting MIN flips parity
  per level, DRAM's MAJ preserves it).  Mismatches that cannot be
  planned away are steered to the cheaper operand.
* **liveness** — intermediate vectors are freed immediately after their
  last use, so a compiled query's row footprint stays at the live-set
  peak instead of the term count.

:func:`naive_run` executes the un-optimized AST through the engine's
compound ops exactly as handwritten kernels chain them, providing the
before/after primitive counts quoted in the benchmarks.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

import numpy as np

from repro.arch.bank import BitVector
from repro.arch.commands import CommandType, Stats
from repro.arch.engine import BulkEngine
from repro.arch.spec import DRAM_8GB, StagingPolicy
from repro.errors import QueryError

__all__ = [
    "Expr", "Col", "Const", "Not", "And", "Or", "Nand", "Nor", "Xor",
    "Xnor", "AndNot", "Maj", "Select", "Match", "parse",
    "canonical_key", "CompiledQuery", "VectorProgram", "compile_expr",
    "compile_for", "naive_run", "native_primitives",
]


# ----------------------------------------------------------------------
# user-facing AST
# ----------------------------------------------------------------------
class Expr:
    """Base class for logic expressions over named bit columns."""

    def __and__(self, other: "Expr") -> "And":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Or":
        return Or(self, other)

    def __xor__(self, other: "Expr") -> "Xor":
        return Xor(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)

    def cols(self) -> tuple[str, ...]:
        """Referenced column names, in first-appearance order."""
        seen: dict[str, None] = {}
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop(0)
            if isinstance(node, Col):
                seen.setdefault(node.name)
            else:
                stack = list(node.children()) + stack
        return tuple(seen)

    def children(self) -> tuple["Expr", ...]:
        return ()

    def __repr__(self) -> str:
        return str(self)


class Col(Expr):
    """A named bit column (leaf)."""

    def __init__(self, name: str) -> None:
        if not re.fullmatch(r"[A-Za-z_]\w*", name):
            raise QueryError(f"invalid column name {name!r}")
        self.name = name

    def __str__(self) -> str:
        return self.name


class Const(Expr):
    """The all-0s or all-1s vector."""

    def __init__(self, bit: int) -> None:
        if bit not in (0, 1):
            raise QueryError("constant must be 0 or 1")
        self.bit = bit

    def __str__(self) -> str:
        return str(self.bit)


class Not(Expr):
    def __init__(self, x: Expr) -> None:
        self.x = x

    def children(self) -> tuple[Expr, ...]:
        return (self.x,)

    def __str__(self) -> str:
        return f"~{self.x}"


class _Nary(Expr):
    op = "?"

    def __init__(self, *xs: Expr) -> None:
        if len(xs) < 2:
            raise QueryError(
                f"{type(self).__name__} needs at least two operands")
        self.xs = tuple(xs)

    def children(self) -> tuple[Expr, ...]:
        return self.xs

    def __str__(self) -> str:
        return "(" + f" {self.op} ".join(map(str, self.xs)) + ")"


class And(_Nary):
    op = "&"


class Or(_Nary):
    op = "|"


class Xor(_Nary):
    op = "^"


class Nand(_Nary):
    op = "&"

    def __str__(self) -> str:
        return "~" + super().__str__()


class Nor(_Nary):
    op = "|"

    def __str__(self) -> str:
        return "~" + super().__str__()


class Xnor(_Nary):
    op = "^"

    def __str__(self) -> str:
        return "~" + super().__str__()


class AndNot(Expr):
    """a AND NOT b (set difference)."""

    def __init__(self, a: Expr, b: Expr) -> None:
        self.a, self.b = a, b

    def children(self) -> tuple[Expr, ...]:
        return (self.a, self.b)

    def __str__(self) -> str:
        return f"({self.a} & ~{self.b})"


class Maj(Expr):
    """Three-input majority (the native triple-activation)."""

    def __init__(self, a: Expr, b: Expr, c: Expr) -> None:
        self.a, self.b, self.c = a, b, c

    def children(self) -> tuple[Expr, ...]:
        return (self.a, self.b, self.c)

    def __str__(self) -> str:
        return f"maj({self.a}, {self.b}, {self.c})"


class Select(Expr):
    """(mask AND a) OR (NOT mask AND b) — bulk multiplexer."""

    def __init__(self, mask: Expr, a: Expr, b: Expr) -> None:
        self.mask, self.a, self.b = mask, a, b

    def children(self) -> tuple[Expr, ...]:
        return (self.mask, self.a, self.b)

    def __str__(self) -> str:
        return f"sel({self.mask}, {self.a}, {self.b})"


def _parse_key_bits(value, n: int, *, what: str = "key",
                    allow_x: bool = True) -> tuple[tuple, tuple]:
    """Normalize a key/mask literal to ``(bits, care)`` tuples.

    Accepts a ``0b``-style string (``x`` marks a don't-care position
    when ``allow_x``) or any bit sequence (``None`` = don't care).
    The literal maps positionally: first element ↔ first column.
    """
    bits: list[int] = []
    care: list[int] = []
    if isinstance(value, str):
        text = value[2:] if value[:2].lower() == "0b" else value
        for ch in text:
            if ch in "01":
                bits.append(int(ch))
                care.append(1)
            elif ch in "xX" and allow_x:
                bits.append(0)
                care.append(0)
            else:
                raise QueryError(
                    f"bad {what} literal character {ch!r}")
    else:
        try:
            items = list(value)
        except TypeError:
            raise QueryError(
                f"match() {what} must be a string or bit sequence, "
                f"got {type(value).__name__}") from None
        for item in items:
            if item is None:
                if not allow_x:
                    raise QueryError(
                        f"match() {what} does not take don't-cares")
                bits.append(0)
                care.append(0)
                continue
            bit = int(item)
            if bit not in (0, 1):
                raise QueryError(
                    f"match() {what} bit must be 0 or 1, got {item!r}")
            bits.append(bit)
            care.append(1)
    if len(bits) != n:
        raise QueryError(
            f"match() {what} has {len(bits)} bits for {n} columns")
    return tuple(bits), tuple(care)


class Match(Expr):
    """CAM search: a row hits when every cared column equals its key bit.

    ``key`` maps positionally onto the columns (first column ↔ leftmost
    literal bit) and may be a ``0b``-style string with ``x`` don't-care
    positions (``match(a, b, c, key="1x0")``) or a bit sequence with
    ``None`` for don't-cares.  ``mask`` optionally selects the compared
    positions (1 = compare); it intersects with the key's own ``x``
    positions.  An all-don't-care key matches every row.
    """

    def __init__(self, *xs: Expr, key, mask=None) -> None:
        if not xs:
            raise QueryError("match() needs at least one column")
        self.xs = tuple(xs)
        bits, care = _parse_key_bits(key, len(xs), what="key")
        if mask is not None:
            mbits, _ = _parse_key_bits(mask, len(xs), what="mask",
                                       allow_x=False)
            care = tuple(c & m for c, m in zip(care, mbits))
        # Canonical form: key bits at don't-care positions read as 0.
        self.key = tuple(b & c for b, c in zip(bits, care))
        self.mask = care

    def children(self) -> tuple[Expr, ...]:
        return self.xs

    def __str__(self) -> str:
        literal = "".join("x" if not c else str(b)
                          for b, c in zip(self.key, self.mask))
        return (f"match({', '.join(map(str, self.xs))}, 0b{literal})")

    def as_logic(self) -> Expr:
        """Equivalent plain-logic form: AND over cared (col XNOR bit)."""
        lits = [x if b else Not(x)
                for x, b, c in zip(self.xs, self.key, self.mask) if c]
        if not lits:
            return Const(1)
        if len(lits) == 1:
            return lits[0]
        return And(*lits)


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
_TOKEN = re.compile(r"\s*(?:(?P<name>[A-Za-z_]\w*)|(?P<key>0b[01xX]+)"
                    r"|(?P<const>[01])|(?P<op>[&|^~!(),]))")

_KEYWORD_OPS = {"and": "&", "or": "|", "xor": "^", "not": "~"}
_FUNCTIONS = {
    "maj": (Maj, 3), "majority": (Maj, 3),
    "sel": (Select, 3), "select": (Select, 3),
    "nand": (Nand, None), "nor": (Nor, None), "xnor": (Xnor, None),
    "andnot": (AndNot, 2),
}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise QueryError(
                    f"bad character {text[pos:].strip()[0]!r} in query")
            break
        pos = match.end()
        tokens.append(match.group("name") or match.group("key")
                      or match.group("const") or match.group("op"))
    return tokens


class _Parser:
    """Precedence-climbing parser: ``|`` < ``^`` < ``&`` < ``~``."""

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: str | None = None) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        if expected is not None and token != expected:
            raise QueryError(f"expected {expected!r}, got {token!r}")
        self.pos += 1
        return token

    def _norm(self, token: str | None) -> str | None:
        if token is None:
            return None
        return _KEYWORD_OPS.get(token.lower(), token)

    def parse(self) -> Expr:
        expr = self.parse_or()
        if self.peek() is not None:
            raise QueryError(f"trailing input at {self.peek()!r}")
        return expr

    def _binary(self, symbol: str, parse_next, cls) -> Expr:
        parts = [parse_next()]
        while self._norm(self.peek()) == symbol:
            self.take()
            parts.append(parse_next())
        return parts[0] if len(parts) == 1 else cls(*parts)

    def parse_or(self) -> Expr:
        return self._binary("|", self.parse_xor, Or)

    def parse_xor(self) -> Expr:
        return self._binary("^", self.parse_and, Xor)

    def parse_and(self) -> Expr:
        return self._binary("&", self.parse_unary, And)

    def parse_unary(self) -> Expr:
        if self._norm(self.peek()) in ("~", "!"):
            self.take()
            return Not(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.take()
        if token == "(":
            expr = self.parse_or()
            self.take(")")
            return expr
        if token in ("0", "1"):
            return Const(int(token))
        if token.startswith("0b"):
            raise QueryError(
                f"key literal {token!r} is only valid inside match()")
        lowered = token.lower()
        if lowered == "match" and self.peek() == "(":
            return self._match_call()
        if self.peek() == "(" and (lowered in _FUNCTIONS
                                   or lowered in ("and", "or", "xor")):
            args = self._arguments()
            if lowered in ("and", "or", "xor"):
                cls = {"and": And, "or": Or, "xor": Xor}[lowered]
                return cls(*args)
            cls, arity = _FUNCTIONS[lowered]
            if arity is not None and len(args) != arity:
                raise QueryError(
                    f"{lowered}() takes {arity} arguments, got {len(args)}")
            return cls(*args)
        if lowered in _KEYWORD_OPS or lowered in _FUNCTIONS:
            raise QueryError(f"misplaced keyword {token!r}")
        return Col(token)

    def _arguments(self) -> list[Expr]:
        self.take("(")
        args = [self.parse_or()]
        while self.peek() == ",":
            self.take()
            args.append(self.parse_or())
        self.take(")")
        return args

    def _match_call(self) -> Expr:
        """``match(cols..., 0b<key>[, 0b<mask>])`` — key/mask literals
        trail the column expressions; ``x`` in the key is a don't-care.
        """
        self.take("(")
        cols: list[Expr] = []
        literals: list[str] = []
        while True:
            token = self.peek()
            if token is not None and token.startswith("0b"):
                literals.append(self.take())
            elif literals:
                raise QueryError(
                    "match() key/mask literals must come last")
            else:
                cols.append(self.parse_or())
            if self.peek() == ",":
                self.take()
                continue
            break
        self.take(")")
        if not literals:
            raise QueryError(
                "match() needs a key literal like 0b1x0")
        if len(literals) > 2:
            raise QueryError(
                "match() takes one key and at most one mask literal")
        mask = literals[1] if len(literals) == 2 else None
        return Match(*cols, key=literals[0], mask=mask)


def parse(text: str) -> Expr:
    """Parse a query string into an :class:`Expr`.

    Syntax: columns are identifiers; operators ``~ & ^ |`` (or the
    keywords ``not/and/xor/or``) with conventional precedence;
    functions ``maj(a,b,c)``, ``sel(m,a,b)``, ``nand(...)``,
    ``nor(...)``, ``xnor(...)``, ``andnot(a,b)``; constants ``0``/``1``;
    CAM search ``match(cols..., 0b<key>[, 0b<mask>])`` where the key
    maps left-to-right onto the columns and ``x`` marks a don't-care.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens).parse()


def _as_expr(expr: "Expr | str") -> Expr:
    return parse(expr) if isinstance(expr, str) else expr


# ----------------------------------------------------------------------
# AIG lowering with structural hashing
# ----------------------------------------------------------------------
# A reference is ``(node_index << 1) | negated``; node 0 is the constant
# TRUE, so TRUE = 0 and FALSE = 1.
_TRUE = 0
_FALSE = 1


#: content keys longer than this are replaced by a digest.  Keys stay
#: human-readable for ordinary queries; deep programs (a CRC feedback
#: chain re-reads its own outputs, so the *tree* expansion of the
#: shared DAG grows exponentially) would otherwise spend quadratic-plus
#: time and memory materializing structural strings.
_KEY_CAP = 96


class _Aig:
    """Hash-consed and-inverter graph with XOR and MAJ extension nodes."""

    def __init__(self) -> None:
        self.nodes: list[tuple] = [("true",)]
        self.keys: list[str] = ["1"]
        self._table: dict[tuple, int] = {("true",): 0}
        self.col_order: list[str] = []

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _cap_key(key: str) -> str:
        """Bound a content key's length, preserving content equality.

        Equal structures build equal strings and therefore equal
        digests; children are already capped, so every key is computed
        in O(1) regardless of graph depth.
        """
        if len(key) <= _KEY_CAP:
            return key
        import hashlib
        return "#" + hashlib.sha256(key.encode()).hexdigest()

    def ref_key(self, ref: int) -> str:
        return ("!" if ref & 1 else "") + self.keys[ref >> 1]

    def _intern(self, node: tuple, key: str) -> int:
        idx = self._table.get(node)
        if idx is None:
            idx = len(self.nodes)
            self.nodes.append(node)
            self.keys.append(key)
            self._table[node] = idx
        return idx << 1

    # -- constructors --------------------------------------------------
    def col(self, name: str) -> int:
        if name not in self.col_order:
            self.col_order.append(name)
        return self._intern(("col", name), f"c:{name}")

    def and_(self, x: int, y: int) -> int:
        if x == _TRUE:
            return y
        if y == _TRUE:
            return x
        if x == _FALSE or y == _FALSE:
            return _FALSE
        if x == y:
            return x
        if x == y ^ 1:
            return _FALSE
        x, y = sorted((x, y), key=self.ref_key)
        key = self._cap_key(f"&({self.ref_key(x)},{self.ref_key(y)})")
        return self._intern(("and", x, y), key)

    def or_(self, x: int, y: int) -> int:
        return self.and_(x ^ 1, y ^ 1) ^ 1

    def xor(self, x: int, y: int) -> int:
        neg = (x & 1) ^ (y & 1)
        xp, yp = x & ~1, y & ~1
        if xp == yp:
            return _TRUE if neg else _FALSE
        if xp == _TRUE:           # XOR with constant 1 inverts
            return yp ^ 1 ^ neg
        if yp == _TRUE:
            return xp ^ 1 ^ neg
        xp, yp = sorted((xp, yp), key=self.ref_key)
        key = self._cap_key(f"^({self.ref_key(xp)},{self.ref_key(yp)})")
        return self._intern(("xor", xp, yp), key) ^ neg

    def maj(self, x: int, y: int, z: int) -> int:
        # Constant folding: MAJ(1, y, z) = y|z and MAJ(0, y, z) = y&z.
        for ref, rest in ((x, (y, z)), (y, (x, z)), (z, (x, y))):
            if ref == _TRUE:
                return self.or_(*rest)
            if ref == _FALSE:
                return self.and_(*rest)
        # Duplicate / contradictory operand collapse.
        for a, b, c in ((x, y, z), (x, z, y), (y, z, x)):
            if a == b:
                return a
            if a == b ^ 1:
                return c
        # Self-duality: normalize to at most one negated operand.
        neg = 0
        if (x & 1) + (y & 1) + (z & 1) >= 2:
            x, y, z = x ^ 1, y ^ 1, z ^ 1
            neg = 1
        x, y, z = sorted((x, y, z), key=self.ref_key)
        key = self._cap_key(f"m({self.ref_key(x)},{self.ref_key(y)},"
                            f"{self.ref_key(z)})")
        return self._intern(("maj", x, y, z), key) ^ neg

    # -- lowering ------------------------------------------------------
    def _balanced(self, refs: list[int], fn) -> int:
        """Pairwise (balanced) reduction keeps flag parities aligned."""
        while len(refs) > 1:
            nxt = [fn(refs[i], refs[i + 1])
                   for i in range(0, len(refs) - 1, 2)]
            if len(refs) % 2:
                nxt.append(refs[-1])
            refs = nxt
        return refs[0]

    def lower(self, expr: Expr,
              env: Mapping[str, int] | None = None) -> int:
        """Lower an expression to an AIG reference.

        ``env`` (the :class:`~repro.arch.program.Program` layer's
        statement environment) maps already-assigned names to their AIG
        references: a :class:`Col` whose name is bound resolves to the
        bound sub-graph instead of a fresh column leaf, which is what
        makes cross-statement common-subexpression elimination fall out
        of the ordinary hash-consing.
        """
        if isinstance(expr, Col):
            if env is not None:
                ref = env.get(expr.name)
                if ref is not None:
                    return ref
            return self.col(expr.name)
        if isinstance(expr, Const):
            return _TRUE if expr.bit else _FALSE
        if isinstance(expr, Not):
            return self.lower(expr.x, env) ^ 1
        if isinstance(expr, (And, Nand)):
            ref = self._balanced([self.lower(x, env) for x in expr.xs],
                                 self.and_)
            return ref ^ (1 if isinstance(expr, Nand) else 0)
        if isinstance(expr, (Or, Nor)):
            ref = self._balanced([self.lower(x, env) for x in expr.xs],
                                 self.or_)
            return ref ^ (1 if isinstance(expr, Nor) else 0)
        if isinstance(expr, (Xor, Xnor)):
            ref = self._balanced([self.lower(x, env) for x in expr.xs],
                                 self.xor)
            return ref ^ (1 if isinstance(expr, Xnor) else 0)
        if isinstance(expr, AndNot):
            return self.and_(self.lower(expr.a, env),
                             self.lower(expr.b, env) ^ 1)
        if isinstance(expr, Maj):
            return self.maj(self.lower(expr.a, env),
                            self.lower(expr.b, env),
                            self.lower(expr.c, env))
        if isinstance(expr, Select):
            mask = self.lower(expr.mask, env)
            return self.or_(self.and_(mask, self.lower(expr.a, env)),
                            self.and_(self.lower(expr.b, env), mask ^ 1))
        if isinstance(expr, Match):
            # XNOR against a constant key bit degenerates to the column
            # or its complement, so a CAM match is an AND of (possibly
            # negated) literals over the cared positions.
            refs = [self.lower(x, env) ^ (0 if bit else 1)
                    for x, bit, care
                    in zip(expr.xs, expr.key, expr.mask) if care]
            if not refs:
                return _TRUE
            return self._balanced(refs, self.and_)
        raise QueryError(f"cannot lower {type(expr).__name__}")


def canonical_key(expr: "Expr | str") -> str:
    """Content-determined key of the optimized expression.

    Equivalent queries — reordered commutative operands, double NOTs,
    De-Morganed forms, repeated sub-terms — share one key, which is what
    the service's result cache is keyed on.
    """
    aig = _Aig()
    root = aig.lower(_as_expr(expr))
    return aig.ref_key(root)


# ----------------------------------------------------------------------
# columnar register-machine bytecode
# ----------------------------------------------------------------------
class VectorProgram:
    """Flat register-machine bytecode for the columnar executor.

    Lowered once per :class:`CompiledQuery` from its hash-consed AIG:
    every AIG op node becomes one *step* whose micro-ops each execute as
    a single ``np.bitwise_*(..., out=)`` kernel over a whole packed
    ``(n_shards, words)`` uint64 matrix — all shards advance together,
    with no per-shard Python dispatch and no locks (numpy releases the
    GIL inside each kernel).

    Steps carry the AIG node's canonical content key, so a batch-level
    ``node_cache`` shares computed sub-expression matrices *across*
    queries in one batch: a node whose key is already cached binds its
    register to the cached matrix and skips the kernels entirely.
    Cached and column matrices are never written — every kernel's
    destination is a scratch register drawn from the caller's pool —
    so sharing is always safe.

    The program computes **logical values** directly (complement-flag
    edges of the AIG are folded into fused ``andn``/``nor`` micro-ops
    or explicit NOTs), which is bit-identical to the engine-replay
    path's flag algebra by construction.  Cost accounting is *not* part
    of the program — the analytic coster in
    :mod:`repro.arch.primitives` charges the plan's engine events in
    closed form.
    """

    #: micro-op names (first element of each micro-op tuple)
    OPS = ("and", "andn", "nor", "xor", "maj", "not", "copy", "const")
    #: compound micro-ops emitted only by the peephole fuser (:meth:`fuse`)
    FUSED_OPS = ("or", "nand", "xnor", "ornot", "andor", "noror", "maj4")

    def __init__(self, steps: list[tuple], n_regs: int,
                 out_reg: int | None,
                 out_regs: Mapping[str, int] | None = None, *,
                 fused: bool = False) -> None:
        #: list of (node_key | None, dst_reg, micro_ops, free_regs)
        #: — fused programs append a fifth element, the *steal*
        #: register: a dying operand whose buffer the step may reuse
        #: as its destination instead of allocating a fresh matrix.
        self.steps = steps
        self.n_regs = n_regs
        #: single-expression result register (compiled queries)
        self.out_reg = out_reg
        #: named output registers (multi-statement programs)
        self.out_regs = dict(out_regs) if out_regs is not None else None
        #: True for programs produced by :meth:`fuse`
        self.fused = fused

    # -- picklable transport ------------------------------------------
    def spec(self) -> tuple:
        """Self-contained, picklable payload describing this bytecode.

        Steps, register specs and micro-ops are pure nested tuples of
        primitives, so the spec round-trips through ``pickle`` (or a
        ``multiprocessing`` pipe) without dragging along the compiler,
        the AIG, or any numpy state.  :meth:`from_spec` rebuilds an
        equivalent program that executes bit-identically.
        """
        out_regs = None if self.out_regs is None else \
            tuple(sorted(self.out_regs.items()))
        return (tuple(tuple(step) for step in self.steps),
                int(self.n_regs), self.out_reg, out_regs,
                bool(self.fused))

    @classmethod
    def from_spec(cls, spec: tuple) -> "VectorProgram":
        """Rebuild a program from a :meth:`spec` payload."""
        steps, n_regs, out_reg, out_regs, fused = spec
        return cls([tuple(step) for step in steps], n_regs, out_reg,
                   dict(out_regs) if out_regs is not None else None,
                   fused=fused)

    # -- execution -----------------------------------------------------
    def run(self, columns: Mapping[str, np.ndarray], *,
            shape: tuple[int, ...] | None = None,
            pool=None, node_cache: dict | None = None,
            executor=None, blocks: int = 1) -> np.ndarray:
        """Execute over packed word matrices; returns the result matrix.

        ``columns`` maps names to read-only matrices (all one shape).
        ``pool`` (optional) provides ``take()``/``give(arr)`` for
        scratch matrices; ``node_cache`` (optional) is the cross-query
        sub-expression cache, keyed by AIG content keys.  The returned
        matrix is owned by the caller unless it was donated to the
        cache (callers treat results as read-only either way).

        ``executor``/``blocks`` select shard-parallel execution: the
        matrix rows are split into ``blocks`` contiguous row-blocks and
        the recorded kernel sequence replays on each block concurrently
        (numpy releases the GIL inside bitwise kernels).  Bit-identical
        to serial execution — every kernel is elementwise, so row
        blocks never interact.
        """
        if self.out_reg is None:
            raise QueryError("multi-output program: use run_outputs()")
        regs = self._execute(columns, shape=shape, pool=pool,
                             node_cache=node_cache,
                             executor=executor, blocks=blocks)
        return regs[self.out_reg]

    def run_outputs(self, columns: Mapping[str, np.ndarray], *,
                    shape: tuple[int, ...] | None = None,
                    pool=None, node_cache: dict | None = None,
                    executor=None, blocks: int = 1,
                    ) -> dict[str, np.ndarray]:
        """Execute a multi-output program; returns ``{name: matrix}``.

        Two output names whose final values coincide in the optimized
        graph map to the *same* matrix object — callers treat result
        matrices as read-only.
        """
        if self.out_regs is None:
            raise QueryError("single-output program: use run()")
        regs = self._execute(columns, shape=shape, pool=pool,
                             node_cache=node_cache,
                             executor=executor, blocks=blocks)
        return {name: regs[reg] for name, reg in self.out_regs.items()}

    def _execute(self, columns: Mapping[str, np.ndarray], *,
                 shape: tuple[int, ...] | None = None,
                 pool=None, node_cache: dict | None = None,
                 executor=None, blocks: int = 1) -> list:
        if shape is None:
            try:
                shape = next(iter(columns.values())).shape
            except StopIteration:
                raise QueryError(
                    "constant-only program needs an explicit shape"
                ) from None
        parallel = executor is not None and blocks > 1 and shape[0] > 1
        pool_take = pool.take if pool is not None else \
            (lambda: np.empty(shape, dtype=np.uint64))
        if parallel:
            # Bind pass: kernels are recorded, not executed.  Buffers
            # freed during binding must stay run-local — giving them to
            # the shared pool mid-bind would let a concurrent run
            # scribble on a matrix the replay workers still read.
            kernels: list[tuple] = []
            local_free: list[np.ndarray] = []

            def take() -> np.ndarray:
                return local_free.pop() if local_free else pool_take()

            def give(arr) -> None:
                local_free.append(arr)

            def emit(op, out, a=None, b=None) -> None:
                kernels.append((op, out, a, b))
        else:
            take = pool_take
            give = pool.give if pool is not None else (lambda arr: None)

            def emit(op, out, a=None, b=None) -> None:
                _SERIAL_KERNELS[op](out, a, b)

        regs: list[np.ndarray | None] = [None] * self.n_regs
        # poolable[i]: the register's matrix belongs to this run (not a
        # column, not borrowed from / donated to the node cache).
        poolable = [False] * self.n_regs
        donations: list[tuple[str, np.ndarray]] = []

        def resolve(spec) -> np.ndarray:
            kind, value = spec
            return columns[value] if kind == "col" else regs[value]

        for step in self.steps:
            key, dst, micro_ops, free_regs = step[0], step[1], \
                step[2], step[3]
            steal = step[4] if len(step) > 4 else None
            cached = None if (node_cache is None or key is None) \
                else node_cache.get(key)
            if cached is not None:
                regs[dst] = cached
                poolable[dst] = False
            else:
                stole = False
                if (steal is not None and regs[dst] is None
                        and regs[steal] is not None
                        and poolable[steal]):
                    # The dying operand's buffer becomes the step
                    # output.  The fuser only annotates steals whose
                    # kernel order reads the stolen register at or
                    # before the first write to the destination, where
                    # elementwise aliasing is exact.
                    regs[dst] = regs[steal]
                    poolable[dst] = True
                    poolable[steal] = False
                    stole = True
                for op in micro_ops:
                    name, reg = op[0], op[1]
                    if regs[reg] is None:
                        regs[reg] = take()
                        poolable[reg] = True
                    out = regs[reg]
                    if name == "and":
                        emit("and", out, resolve(op[2]), resolve(op[3]))
                    elif name == "andn":  # op[2] & ~op[3]
                        emit("not", out, resolve(op[3]))
                        emit("and", out, out, resolve(op[2]))
                    elif name == "nor":
                        emit("or", out, resolve(op[2]), resolve(op[3]))
                        emit("not", out, out)
                    elif name == "xor":
                        emit("xor", out, resolve(op[2]), resolve(op[3]))
                    elif name == "or":
                        emit("or", out, resolve(op[2]), resolve(op[3]))
                    elif name == "nand":
                        emit("and", out, resolve(op[2]), resolve(op[3]))
                        emit("not", out, out)
                    elif name == "xnor":
                        emit("xor", out, resolve(op[2]), resolve(op[3]))
                        emit("not", out, out)
                    elif name == "ornot":  # op[2] | ~op[3]
                        emit("not", out, resolve(op[3]))
                        emit("or", out, out, resolve(op[2]))
                    elif name == "andor":  # (op[2] | op[3]) & op[4]
                        emit("or", out, resolve(op[2]), resolve(op[3]))
                        emit("and", out, out, resolve(op[4]))
                    elif name == "noror":  # ~(op[2] | op[3] | op[4])
                        emit("or", out, resolve(op[2]), resolve(op[3]))
                        emit("or", out, out, resolve(op[4]))
                        emit("not", out, out)
                    elif name == "maj":
                        a, b, c = (resolve(op[k]) for k in (2, 3, 4))
                        scratch = take()
                        emit("and", out, a, b)
                        emit("and", scratch, a, c)
                        emit("or", out, out, scratch)
                        emit("and", scratch, b, c)
                        emit("or", out, out, scratch)
                        give(scratch)
                    elif name == "maj4":
                        # Fused 4-kernel majority:
                        #   maj(a,b,c) == ((a|b) & c) | (a & b)
                        a, b, c = (resolve(op[k]) for k in (2, 3, 4))
                        csteal = op[5]
                        if (not stole and csteal is not None
                                and regs[csteal] is not None
                                and poolable[csteal]):
                            # c's dying buffer is the scratch — safe
                            # because c's last read precedes the first
                            # write to the scratch.
                            scratch = regs[csteal]
                            poolable[csteal] = False
                            emit("or", out, a, b)
                            emit("and", out, out, c)
                            emit("and", scratch, a, b)
                            emit("or", out, out, scratch)
                        else:
                            # Pooled scratch; all reads of a/b happen
                            # at or before the first write to out, so
                            # out may alias a stolen a/b.
                            scratch = take()
                            emit("and", scratch, a, b)
                            emit("or", out, a, b)
                            emit("and", out, out, c)
                            emit("or", out, out, scratch)
                        give(scratch)
                    elif name == "not":
                        emit("not", out, resolve(op[2]))
                    elif name == "copy":
                        emit("copy", out, resolve(op[2]))
                    elif name == "const":
                        emit("fill", out,
                             np.uint64(0xFFFFFFFFFFFFFFFF)
                             if op[2] else np.uint64(0))
                    else:  # pragma: no cover - lowering emits OPS only
                        raise QueryError(f"unknown micro-op {name!r}")
                if node_cache is not None and key is not None:
                    poolable[dst] = False  # donated: outlives this run
                    if parallel:
                        # Donate only after the kernels actually ran —
                        # the cache must never expose a matrix whose
                        # contents don't exist yet.
                        donations.append((key, regs[dst]))
                    else:
                        node_cache[key] = regs[dst]
            for reg in free_regs:
                if poolable[reg] and regs[reg] is not None:
                    give(regs[reg])
                regs[reg] = None
                poolable[reg] = False

        if parallel:
            rows = shape[0]
            n = max(1, min(int(blocks), rows))
            bounds = [rows * i // n for i in range(n + 1)]
            spans = [(lo, hi) for lo, hi in zip(bounds, bounds[1:])
                     if hi > lo]
            futures = [executor.submit(_replay, kernels, lo, hi)
                       for lo, hi in spans[1:]]
            _replay(kernels, *spans[0])
            for future in futures:
                future.result()
            for key, matrix in donations:
                node_cache[key] = matrix
            if pool is not None:
                for arr in local_free:
                    pool.give(arr)
        return regs


    # -- peephole fusion -----------------------------------------------
    def fuse(self) -> "VectorProgram":
        """Peephole-fused, allocation-recycling copy of this program.

        Two rewrites, both bit-exact by construction:

        * **pair fusion** — a single-micro ``and``/``andn``/``nor``/
          ``xor`` step whose destination is consumed exactly once by
          the immediately following step (and dies there) merges into
          one compound micro-op (``nand``/``or``/``xnor``/``ornot``/
          ``andor``/``noror``), eliminating the intermediate register's
          matrix and one or more kernels;
        * **steal annotation** — every step whose kernel order permits
          it reuses a dying operand's buffer as its destination
          (``steal``), and 5-kernel ``maj`` becomes the 4-kernel
          ``maj4`` form.

        Fusion changes *how* kernels execute, never which charge
        events the plan models — analytic cost accounting is computed
        from the plan, not the bytecode.  The fused program keeps the
        consumer's node key, so batch node-cache hits still short the
        whole fused computation; the producer's intermediate value is
        simply no longer donated.
        """
        protected: set[int] = set()
        if self.out_reg is not None:
            protected.add(self.out_reg)
        if self.out_regs:
            protected.update(self.out_regs.values())

        fused_steps: list[tuple] = []
        i = 0
        while i < len(self.steps):
            step = self.steps[i]
            merged = None
            if (i + 1 < len(self.steps) and len(step[2]) == 1
                    and step[2][0][0] in ("and", "andn", "nor", "xor")
                    and step[1] not in protected):
                merged = _fuse_pair(step, self.steps[i + 1])
            if merged is not None:
                fused_steps.append(merged)
                i += 2
            else:
                fused_steps.append(_annotate_step(step))
                i += 1
        return VectorProgram(fused_steps, self.n_regs, self.out_reg,
                             self.out_regs, fused=True)


# -- primitive kernels (shared by serial and block-replay modes) -------
def _k_and(out, a, b):
    np.bitwise_and(a, b, out=out)


def _k_or(out, a, b):
    np.bitwise_or(a, b, out=out)


def _k_xor(out, a, b):
    np.bitwise_xor(a, b, out=out)


def _k_not(out, a, _b):
    np.bitwise_not(a, out=out)


def _k_copy(out, a, _b):
    np.copyto(out, a)


def _k_fill(out, a, _b):
    out.fill(a)


_SERIAL_KERNELS = {"and": _k_and, "or": _k_or, "xor": _k_xor,
                   "not": _k_not, "copy": _k_copy, "fill": _k_fill}


def _replay(kernels: list[tuple], lo: int, hi: int) -> None:
    """Re-run a recorded kernel sequence on row-block ``[lo:hi)``.

    Every kernel is elementwise over matrix rows, so disjoint blocks
    replaying the *whole* sequence concurrently never interact — even
    through buffers that are reused across steps, because each block's
    kernel order is the program order.
    """
    for op, out, a, b in kernels:
        o = out[lo:hi]
        if op == "and":
            np.bitwise_and(a[lo:hi], b[lo:hi], out=o)
        elif op == "or":
            np.bitwise_or(a[lo:hi], b[lo:hi], out=o)
        elif op == "xor":
            np.bitwise_xor(a[lo:hi], b[lo:hi], out=o)
        elif op == "not":
            np.bitwise_not(a[lo:hi], out=o)
        elif op == "copy":
            np.copyto(o, a[lo:hi])
        else:  # fill
            o.fill(a)


# -- fusion helpers ----------------------------------------------------
def _steal_positions(op: tuple) -> tuple[int, ...]:
    """Operand positions of ``op`` whose register may donate its buffer
    to the destination: the kernel order reads them no later than the
    first write to the destination, so in-place aliasing is exact."""
    name = op[0]
    if name in ("and", "xor", "nor", "or", "nand", "xnor"):
        return (2, 3)
    if name in ("andn", "ornot"):
        return (3,)  # the negated operand is written first
    if name in ("andor", "noror"):
        return (2, 3)  # never the second-kernel operand
    if name in ("maj4",):
        return (2, 3)  # never c: it is read after out's first write
    if name in ("not", "copy"):
        return (2,)
    return ()


def _pick_steal(op: tuple, free: set[int],
                written: set[int]) -> int | None:
    """A dying register (not written earlier in this step) whose buffer
    the destination may take over, or None."""
    for pos in _steal_positions(op):
        spec = op[pos]
        if (spec[0] == "reg" and spec[1] in free
                and spec[1] not in written):
            return spec[1]
    return None


def _annotate_step(step: tuple) -> tuple:
    """Steal-annotate one unmerged step; rewrites ``maj`` to ``maj4``."""
    key, dst, micro_ops, free_regs = step[0], step[1], step[2], step[3]
    free = set(free_regs)
    written: set[int] = set()
    out_micro: list[tuple] = []
    steal = None
    for op in micro_ops:
        if op[0] == "maj":
            steal = _pick_steal(("maj4",) + op[1:], free, written)
            csteal = None
            if steal is None and op[4][0] == "reg" \
                    and op[4][1] in free:
                # No a/b steal available: let the scratch matrix take
                # over c's dying buffer instead.
                csteal = op[4][1]
            out_micro.append(("maj4",) + op[1:] + (csteal,))
        else:
            if len(micro_ops) == 1:
                steal = _pick_steal(op, free, written)
            out_micro.append(op)
        written.add(op[1])
    return (key, dst, tuple(out_micro), free_regs, steal)


def _fuse_pair(producer: tuple, consumer: tuple) -> tuple | None:
    """Merge ``producer`` (single and/andn/nor/xor micro) into
    ``consumer`` when the produced value dies there; returns the merged
    5-tuple step or None when no rewrite applies."""
    pkey, pdst, pmicro, pfree = producer[0], producer[1], \
        producer[2], producer[3]
    ckey, cdst, cmicro, cfree = consumer[0], consumer[1], \
        consumer[2], consumer[3]
    if len(cmicro) != 1 or cdst == pdst:
        return None
    if cdst in pfree:
        # Register recycling: cdst's buffer would alias a producer
        # operand that dies here, and the fused kernel order could
        # write it before that operand's last read.
        return None
    if pdst not in cfree:
        return None  # producer's value outlives the consumer
    pk = pmicro[0][0]
    pargs = pmicro[0][2:]
    cop = cmicro[0]
    ck = cop[0]
    pref = ("reg", pdst)
    if sum(1 for spec in cop[2:] if spec == pref) != 1:
        return None
    new = None
    if ck == "not" and cop[2] == pref:
        if pk == "and":
            new = ("nand", cdst) + pargs
        elif pk == "nor":
            new = ("or", cdst) + pargs
        elif pk == "xor":
            new = ("xnor", cdst) + pargs
        elif pk == "andn":  # ~(x & ~y) == y | ~x
            new = ("ornot", cdst, pargs[1], pargs[0])
    elif ck == "andn" and pk == "nor":
        if cop[3] == pref:  # A & ~nor(x,y) == (x | y) & A
            new = ("andor", cdst, pargs[0], pargs[1], cop[2])
        elif cop[2] == pref:  # nor(x,y) & ~B == ~(x | y | B)
            new = ("noror", cdst, pargs[0], pargs[1], cop[3])
    if new is None:
        return None
    free = set(pfree) | set(cfree)
    steal = _pick_steal(new, free, set())
    return (ckey, cdst, (new,), tuple(sorted(free)), steal)


def _lower_vector(plan: "CompiledQuery") -> VectorProgram:
    """Lower a compiled plan's AIG schedule into a VectorProgram."""
    aig = plan._aig
    root = plan._root
    root_idx = root >> 1
    steps: list[tuple] = []
    node_reg: dict[int, int] = {}
    n_regs = 0

    def new_reg() -> int:
        nonlocal n_regs
        n_regs += 1
        return n_regs - 1

    def operand(ref_idx: int):
        node = aig.nodes[ref_idx]
        if node[0] == "col":
            return ("col", node[1])
        return ("reg", node_reg[ref_idx])

    # Remaining-use counts drive scratch release (root is retained).
    remaining = dict(plan._uses)

    def consume(ref_idx: int, free_regs: list[int]) -> None:
        remaining[ref_idx] -= 1
        if (remaining[ref_idx] == 0 and ref_idx in node_reg
                and ref_idx != root_idx):
            free_regs.append(node_reg[ref_idx])

    for idx in plan._schedule:
        node = aig.nodes[idx]
        kind = node[0]
        dst = new_reg()
        node_reg[idx] = dst
        micro: list[tuple] = []
        free_regs: list[int] = []
        if kind == "and":
            _, r1, r2 = node
            a, b = operand(r1 >> 1), operand(r2 >> 1)
            n1, n2 = r1 & 1, r2 & 1
            if not n1 and not n2:
                micro.append(("and", dst, a, b))
            elif n1 and n2:
                micro.append(("nor", dst, a, b))
            elif n1:
                micro.append(("andn", dst, b, a))
            else:
                micro.append(("andn", dst, a, b))
            consume(r1 >> 1, free_regs)
            consume(r2 >> 1, free_regs)
        elif kind == "xor":
            _, r1, r2 = node  # canonically positive references
            micro.append(("xor", dst, operand(r1 >> 1),
                          operand(r2 >> 1)))
            consume(r1 >> 1, free_regs)
            consume(r2 >> 1, free_regs)
        else:  # maj: normalized to at most one negated operand
            refs = node[1:]
            specs = []
            for ref in refs:
                if ref & 1:
                    tmp = new_reg()
                    micro.append(("not", tmp, operand(ref >> 1)))
                    specs.append(("reg", tmp))
                    free_regs.append(tmp)
                else:
                    specs.append(operand(ref >> 1))
            micro.append(("maj", dst, *specs))
            for ref in refs:
                consume(ref >> 1, free_regs)
        steps.append((aig.keys[idx], dst, tuple(micro),
                      tuple(free_regs)))

    # Root materialization (mirrors CompiledQuery._run_planned).
    root_kind = aig.nodes[root_idx][0]
    if root_kind == "true":
        out = new_reg()
        steps.append((aig.ref_key(root), out,
                      (("const", out, 0 if root & 1 else 1),), ()))
    elif root_kind == "col":
        out = new_reg()
        op = "not" if root & 1 else "copy"
        steps.append((aig.ref_key(root), out,
                      ((op, out, operand(root_idx)),), ()))
    elif root & 1:
        # Never invert in place: the node's matrix may be shared via
        # the batch node cache.
        out = new_reg()
        steps.append((aig.ref_key(root), out,
                      (("not", out, ("reg", node_reg[root_idx])),),
                      (node_reg[root_idx],)))
    else:
        out = node_reg[root_idx]
    return VectorProgram(steps, n_regs, out)


# ----------------------------------------------------------------------
# parity-planning compiler
# ----------------------------------------------------------------------
#: planner cost of one engine XOR: 3 logic primitives + 1 internal
#: materialization (AND/MAJ cost 1 and are inlined in the DP rows)
_XOR_COST = 4


class CompiledQuery:
    """An optimized, engine-executable query plan.

    Produced by :func:`compile_expr`; run with :meth:`run`.  The plan is
    specific to a native-primitive polarity (``inverting=True`` for the
    FeRAM MIN engine, ``False`` for the DRAM MAJ engine) because the
    flag-parity algebra differs.
    """

    def __init__(self, expr: Expr, inverting: bool) -> None:
        self.expr = expr
        self.inverting = bool(inverting)
        self._aig = _Aig()
        self._root = self._aig.lower(expr)
        self.key = self._aig.ref_key(self._root)
        self._plan()
        # Live columns: referenced by the *optimized* graph (folded-away
        # operands need no binding).
        self.cols = tuple(
            name for name in self._aig.col_order
            if (self._aig.col(name) >> 1) in self._needed)
        # Lazily built columnar artifacts (see vector_program /
        # cost_events): lowering happens at most once per plan, event
        # probing at most once per (plan, initial column flags) pair;
        # both then ride the service's plan cache.
        self._vector_program: VectorProgram | None = None
        self._vector_program_fused: VectorProgram | None = None
        self._cost_events: dict[tuple, tuple] = {}
        # Ground-truth primitive counts, measured per row on throwaway
        # counting engines (exact — the executor is deterministic), and
        # cost-based plan selection: the parity DP is optimal on trees
        # but approximate once CSE shares a node between consumers that
        # demand different parities, so on the rare expression where the
        # naive chain measures cheaper, the plan keeps the naive order.
        self._use_naive = False
        self.primitives = _measure(self._run_planned, self.cols,
                                   self.inverting)
        self.naive_primitives = _measure(
            lambda eng, cols: naive_run(self.expr, eng, cols),
            self.expr.cols(), self.inverting)
        if self.naive_primitives < self.primitives:
            self._use_naive = True
            self.primitives = self.naive_primitives
            self.cols = self.expr.cols()  # the naive chain binds all

    # -- reachability --------------------------------------------------
    def _reachable(self) -> list[int]:
        """Needed node indices, children before parents."""
        order: list[int] = []
        seen: set[int] = set()
        stack: list[tuple[int, bool]] = [(self._root >> 1, False)]
        while stack:
            idx, expanded = stack.pop()
            if expanded:
                order.append(idx)
                continue
            if idx in seen:
                continue
            seen.add(idx)
            stack.append((idx, True))
            for ref in self._aig.nodes[idx][1:]:
                if isinstance(ref, int):
                    stack.append((ref >> 1, False))
        return order

    # -- planning ------------------------------------------------------
    def _plan(self) -> None:
        aig = self._aig
        inv = 1 if self.inverting else 0
        order = self._reachable()
        self._needed = set(order)
        cost: dict[int, list[int]] = {}
        xor_choice: dict[tuple[int, int], int] = {}

        def cref(ref: int, parity: int) -> int:
            return cost[ref >> 1][parity ^ (ref & 1)]

        for idx in order:
            node = aig.nodes[idx]
            kind = node[0]
            if kind == "true":
                cost[idx] = [0, 0]
            elif kind == "col":
                cost[idx] = [0, 1]
            elif kind == "and":
                _, r1, r2 = node
                cost[idx] = [cref(r1, p ^ inv) + cref(r2, p ^ inv) + 1
                             for p in (0, 1)]
            elif kind == "xor":
                _, r1, r2 = node
                cost[idx] = []
                for p in (0, 1):
                    want = p ^ inv  # parity of f1 ^ f2
                    branches = [cref(r1, 0) + cref(r2, want),
                                cref(r1, 1) + cref(r2, want ^ 1)]
                    best = 0 if branches[0] <= branches[1] else 1
                    xor_choice[(idx, p)] = best
                    cost[idx].append(branches[best] + _XOR_COST)
            elif kind == "maj":
                _, r1, r2, r3 = node
                cost[idx] = [cref(r1, p ^ inv) + cref(r2, p ^ inv)
                             + cref(r3, p ^ inv) + 1 for p in (0, 1)]
        root_idx = self._root >> 1
        self._root_parity = 0 if cost[root_idx][0] <= cost[root_idx][1] \
            else 1
        self.planned_cost = cost[root_idx][self._root_parity]

        # Top-down demand pass: first demand fixes a node's execution
        # parity; later consumers wanting the other parity re-encode at
        # run time (one NOT, counted by the measured ground truth).
        exec_parity: dict[int, int] = {}
        stack = [(root_idx, self._root_parity)]
        while stack:
            idx, parity = stack.pop()
            if idx in exec_parity:
                continue
            exec_parity[idx] = parity
            node = aig.nodes[idx]
            kind = node[0]
            if kind in ("and", "maj"):
                q = parity ^ inv
                for ref in node[1:]:
                    stack.append((ref >> 1, q ^ (ref & 1)))
            elif kind == "xor":
                _, r1, r2 = node
                q1 = xor_choice[(idx, parity)]
                q2 = (parity ^ inv) ^ q1
                stack.append((r1 >> 1, q1 ^ (r1 & 1)))
                stack.append((r2 >> 1, q2 ^ (r2 & 1)))
        self._exec_parity = exec_parity
        self._schedule = self._list_schedule(order, exec_parity, inv)
        # Liveness: uses per node (consumers + root retention).
        uses: dict[int, int] = {root_idx: 1}
        for idx in self._schedule:
            for ref in aig.nodes[idx][1:]:
                child = ref >> 1
                uses[child] = uses.get(child, 0) + 1
        self._uses = uses

    def _list_schedule(self, order: list[int],
                       exec_parity: dict[int, int],
                       inv: int) -> list[int]:
        """Greedy list scheduling of the op nodes.

        Any topological order is correct, but when a shared column is
        planned at different parities by different consumers, the order
        decides how many re-encoding NOTs are paid at run time: ops
        whose operand encodings are already satisfied go first, so a
        shared leaf is only re-encoded once its natural-parity
        consumers are done.  The simulated parity state mirrors the
        executor's runtime checks exactly.
        """
        aig = self._aig
        ops = [idx for idx in order
               if aig.nodes[idx][0] in ("and", "xor", "maj")]
        position = {idx: k for k, idx in enumerate(ops)}
        pending = {idx: sum(1 for ref in aig.nodes[idx][1:]
                            if (ref >> 1) in position)
                   for idx in ops}
        consumers: dict[int, list[int]] = {}
        for idx in ops:
            for ref in aig.nodes[idx][1:]:
                consumers.setdefault(ref >> 1, []).append(idx)
        parity: dict[int, int] = {}  # simulated current parity

        def cur(ref: int) -> int:
            return parity.get(ref >> 1, 0) ^ (ref & 1)

        def mismatches(idx: int) -> int:
            node = aig.nodes[idx]
            if node[0] == "xor":
                return 0
            q = exec_parity[idx] ^ inv
            return sum(1 for ref in node[1:] if cur(ref) != q)

        schedule: list[int] = []
        ready = [idx for idx in ops if pending[idx] == 0]
        while ready:
            ready.sort(key=lambda idx: (mismatches(idx), position[idx]))
            idx = ready.pop(0)
            node = aig.nodes[idx]
            if node[0] == "xor":
                parity[idx] = inv ^ cur(node[1]) ^ cur(node[2])
            else:
                q = exec_parity[idx] ^ inv
                for ref in node[1:]:
                    parity[ref >> 1] = q ^ (ref & 1)
                parity[idx] = exec_parity[idx]
            schedule.append(idx)
            for parent in consumers.get(idx, ()):
                pending[parent] -= 1
                if pending[parent] == 0:
                    ready.append(parent)
        return schedule

    # -- columnar artifacts --------------------------------------------
    def vector_program(self, *, fused: bool = False) -> VectorProgram:
        """The plan's register-machine bytecode (lowered once, cached).

        Bit-exact with :meth:`run` on any engine: both compute the same
        logical function of the AIG; the program just does it as one
        numpy kernel per step over packed word matrices.  With
        ``fused=True``, returns the peephole-fused form (see
        :meth:`VectorProgram.fuse`) — same bits, fewer kernels and
        fewer scratch matrices.
        """
        if self._vector_program is None:
            self._vector_program = _lower_vector(self)
        if not fused:
            return self._vector_program
        if self._vector_program_fused is None:
            self._vector_program_fused = self._vector_program.fuse()
        return self._vector_program_fused

    def cost_events(self, flags: tuple[bool, ...] | None = None,
                    ) -> tuple:
        """Per-row engine charge events of this plan (probed once).

        Returns ``(PlanEvents, final_flags)``: the charge events a
        replay of :meth:`run` fires per table row on a service shard
        (columns co-located in one cell group), plus the complement
        flags the bound columns are left with.  Replay costs depend on
        the columns' *current* flag encodings — parity steering
        re-encodes operands persistently — so ``flags`` (aligned with
        :attr:`cols`; default all-plain) selects the initial state and
        results are memoized per state.
        """
        if flags is None:
            flags = (False,) * len(self.cols)
        cached = self._cost_events.get(flags)
        if cached is None:
            from repro.arch.primitives import probe_plan_events
            cached = probe_plan_events(self, flags)
            self._cost_events[flags] = cached
        return cached

    # -- execution -----------------------------------------------------
    def run(self, engine: BulkEngine,
            columns: Mapping[str, BitVector],
            name: str | None = None, *,
            n_bits: int | None = None) -> BitVector:
        """Execute the plan; returns a fresh (owned) result vector.

        ``columns`` maps column names to resident vectors (all the same
        width).  Columns are only mutated value-preservingly (flag
        re-encodings); intermediates are freed at their last use.
        ``n_bits`` fixes the result width when the optimized query
        references no columns (a fully folded constant).
        """
        if self._use_naive:
            return naive_run(self.expr, engine, columns, name,
                             n_bits=n_bits)
        return self._run_planned(engine, columns, name, n_bits=n_bits)

    def _run_planned(self, engine: BulkEngine,
                     columns: Mapping[str, BitVector],
                     name: str | None = None, *,
                     n_bits: int | None = None) -> BitVector:
        aig = self._aig
        missing = [c for c in self.cols if c not in columns]
        if missing:
            raise QueryError(f"unbound column(s): {missing}")
        widths = {columns[c].n_bits for c in self.cols}
        if len(widths) > 1:
            raise QueryError(f"column width mismatch: {sorted(widths)}")
        if widths:
            n_bits = widths.pop()
        elif n_bits is None:  # fully folded: fall back to bound width
            n_bits = next(iter(columns.values())).n_bits if columns \
                else 64

        # Distinct column names must act as distinct storage; if the
        # caller binds one vector under several referenced names, give
        # the duplicates owned copies (one honest row copy each) so the
        # free flag flips below cannot corrupt a shared operand — the
        # aliasing class the engine ops themselves guard against.
        bound: dict[str, BitVector] = {}
        alias_copies: list[BitVector] = []
        seen: list[BitVector] = []
        for col in self.cols:
            vec = columns[col]
            if any(vec is other for other in seen):
                vec = engine.copy(vec, col)
                alias_copies.append(vec)
            bound[col] = vec
            seen.append(vec)

        vecs: dict[int, BitVector] = {}
        uses = dict(self._uses)
        root_idx = self._root >> 1

        def fetch(idx: int) -> BitVector:
            vec = vecs.get(idx)
            if vec is None:  # leaf column, bound lazily
                vec = bound[aig.nodes[idx][1]]
                vecs[idx] = vec
            return vec

        def release(idx: int) -> None:
            uses[idx] -= 1
            if (uses[idx] == 0 and aig.nodes[idx][0] not in
                    ("col", "true") and idx != root_idx):
                engine.free(vecs[idx])

        for idx in self._schedule:
            node = aig.nodes[idx]
            kind = node[0]
            if kind == "xor":
                _, r1, r2 = node  # canonically positive references
                out = engine.xor(fetch(r1 >> 1), fetch(r2 >> 1))
                release(r1 >> 1)
                release(r2 >> 1)
            else:
                refs = node[1:]
                q = self._exec_parity[idx] ^ (1 if self.inverting else 0)
                operands = []
                flipped = []
                for ref in refs:
                    vec = fetch(ref >> 1)
                    if ref & 1:  # free inverting view of the operand
                        engine.not_(vec)
                        flipped.append(vec)
                    operands.append(vec)
                try:
                    # Steer stragglers to the planned common parity so
                    # the engine op itself never has to equalize.
                    for vec in operands:
                        if vec.complemented != q:
                            engine.force_flag(vec, bool(q))
                    if kind == "and":
                        out = engine.and_(*operands)
                    else:
                        out = engine.majority(*operands)
                finally:
                    for vec in flipped:
                        engine.not_(vec)
                for ref in refs:
                    release(ref >> 1)
            vecs[idx] = out

        # Root materialization: plain columns/constants are copied so
        # the caller always owns the returned vector.
        root_node = aig.nodes[root_idx][0]
        if root_node == "true":
            out = engine.constant(n_bits, 0 if self._root & 1 else 1,
                                  name)
        elif root_node == "col":
            out = engine.copy(fetch(root_idx), name)
            if self._root & 1:
                engine.not_(out)
        else:
            out = vecs[root_idx]
            if self._root & 1:
                engine.not_(out)
            if name is not None:
                out.name = name
        engine.free(*alias_copies)
        return out


def compile_expr(expr: "Expr | str", *,
                 inverting: bool = True) -> CompiledQuery:
    """Compile an expression (or query string) into an engine plan."""
    return CompiledQuery(_as_expr(expr), inverting)


def compile_for(engine: BulkEngine,
                expr: "Expr | str") -> CompiledQuery:
    """Compile for the engine's native primitive polarity."""
    return CompiledQuery(_as_expr(expr), engine._native_inverting())


# ----------------------------------------------------------------------
# naive baseline
# ----------------------------------------------------------------------
def naive_run(expr: "Expr | str", engine: BulkEngine,
              columns: Mapping[str, BitVector],
              name: str | None = None, *,
              n_bits: int | None = None) -> BitVector:
    """Execute the raw AST through the engine's compound ops, exactly as
    handwritten kernels chain them: left folds, ``andnot`` for negated
    AND terms, flip-and-restore for other negated columns, no CSE, no
    parity planning.  This is the before side of the before/after
    primitive counts the compiler is benchmarked against.

    A negated view of a resident column only ever exists inside a
    single engine call (flip, operate, restore), so sibling
    sub-expressions never observe a flipped column; a column required
    both plain and negated by the *same* call is copied, since the
    shared-flag flip is exactly the aliasing corruption the engine ops
    guard against.
    """
    expr = _as_expr(expr)

    def col_vec(name_: str) -> BitVector:
        try:
            return columns[name_]
        except KeyError:
            raise QueryError(f"unbound column(s): [{name_!r}]") from None

    def _width() -> int:
        for vec in columns.values():
            return vec.n_bits
        return n_bits or 64

    def is_neg_col(node: Expr) -> bool:
        return isinstance(node, Not) and isinstance(node.x, Col)

    def free_owned(parts) -> None:
        for vec, owned in parts:
            if owned:
                engine.free(vec)

    def apply(op, parts, neg_names) -> BitVector:
        """One engine call with flip-scoped negated-column views."""
        resolved = [vec for vec, _ in parts]
        flips: list[BitVector] = []
        copies: list[BitVector] = []
        vecs = list(resolved)
        for name_ in neg_names:
            vec = col_vec(name_)
            if any(vec is other for other in resolved):
                vec = engine.not_(engine.copy(vec))
                copies.append(vec)
            elif not any(vec is f for f in flips):
                engine.not_(vec)
                flips.append(vec)
            vecs.append(vec)
        try:
            out = op(*vecs)
        finally:
            for vec in flips:
                engine.not_(vec)
        for vec in copies:
            engine.free(vec)
        free_owned(parts)
        return out

    def fold(parts, combine) -> tuple[BitVector, bool]:
        acc, acc_owned = parts[0]
        for vec, owned in parts[1:]:
            nxt = combine(acc, vec)
            if acc_owned:
                engine.free(acc)
            if owned:
                engine.free(vec)
            acc, acc_owned = nxt, True
        return acc, acc_owned

    def eval_node(node: Expr) -> tuple[BitVector, bool]:
        if isinstance(node, Col):
            return col_vec(node.name), False
        if isinstance(node, Const):
            return engine.constant(_width(), node.bit), True
        if isinstance(node, Not):
            if isinstance(node.x, Not):  # trivial double-NOT
                return eval_node(node.x.x)
            if isinstance(node.x, Col):
                # Standalone negated column (root position): a durable
                # owned complement.
                return engine.not_(engine.copy(col_vec(node.x.name))), True
            vec, owned = eval_node(node.x)
            if owned:
                return engine.not_(vec), True
            return engine.not_(engine.copy(vec)), True
        if isinstance(node, (And, Nand)):
            positives = [x for x in node.xs if not isinstance(x, Not)]
            negated = [x.x for x in node.xs if isinstance(x, Not)]
            if positives:
                acc, acc_owned = fold([eval_node(x) for x in positives],
                                      engine.and_)
            else:
                # All-negated head: ~a & ~b is one native NOR.
                first = eval_node(negated.pop(0))
                second = eval_node(negated.pop(0))
                acc = engine.nor(first[0], second[0])
                free_owned([first, second])
                acc_owned = True
            for inner in negated:
                part = eval_node(inner)
                nxt = engine.andnot(acc, part[0])
                if acc_owned:
                    engine.free(acc)
                free_owned([part])
                acc, acc_owned = nxt, True
            if isinstance(node, Nand):
                if not acc_owned:
                    acc, acc_owned = engine.copy(acc), True
                engine.not_(acc)
            return acc, acc_owned
        if isinstance(node, (Or, Nor)):
            others = [x for x in node.xs if not is_neg_col(x)]
            neg_names = [x.x.name for x in node.xs if is_neg_col(x)]
            if others:
                acc, acc_owned = fold([eval_node(x) for x in others],
                                      engine.or_)
            else:
                # All-negated head: ~a | ~b is one native NAND.
                acc = engine.nand(col_vec(neg_names.pop(0)),
                                  col_vec(neg_names.pop(0)))
                acc_owned = True
            for name_ in neg_names:
                nxt = apply(engine.or_, [(acc, acc_owned)], [name_])
                acc, acc_owned = nxt, True
            if isinstance(node, Nor):
                if not acc_owned:
                    acc, acc_owned = engine.copy(acc), True
                engine.not_(acc)
            return acc, acc_owned
        if isinstance(node, (Xor, Xnor)):
            # Complements pass through XOR freely; strip them and fold
            # the parity into one final free flip.
            parity = sum(isinstance(x, Not) for x in node.xs) % 2
            inners = [x.x if isinstance(x, Not) else x for x in node.xs]
            acc, acc_owned = fold([eval_node(x) for x in inners],
                                  engine.xor)
            if not acc_owned:
                acc, acc_owned = engine.copy(acc), True
            if parity ^ (1 if isinstance(node, Xnor) else 0):
                engine.not_(acc)
            return acc, acc_owned
        if isinstance(node, AndNot):
            parts = [eval_node(node.a), eval_node(node.b)]
            out = engine.andnot(parts[0][0], parts[1][0])
            free_owned(parts)
            return out, True
        if isinstance(node, (Maj, Select)):
            op = engine.majority if isinstance(node, Maj) \
                else engine.select
            kids = node.children()
            parts = [eval_node(x) for x in kids if not is_neg_col(x)]
            neg_names = [x.x.name for x in kids if is_neg_col(x)]
            # apply() appends negated views after the positives, so
            # re-order arguments to match the op signature.
            order = ([i for i, x in enumerate(kids) if not is_neg_col(x)]
                     + [i for i, x in enumerate(kids) if is_neg_col(x)])

            def call(*vecs):
                slots = [None] * len(kids)
                for slot, vec in zip(order, vecs):
                    slots[slot] = vec
                return op(*slots)

            return apply(call, parts, neg_names), True
        if isinstance(node, Match):
            if all(isinstance(x, Col) for x in node.xs):
                # CAM search through the engine's compound match op.
                vecs = [col_vec(x.name) for x in node.xs]
                return engine.match(vecs, node.key, node.mask), True
            # Non-column operands: fall back to the desugared form.
            return eval_node(node.as_logic())
        raise QueryError(f"cannot execute {type(node).__name__}")

    out, owned = eval_node(expr)
    if not owned:  # bare column query: hand back an owned copy
        out = engine.copy(out)
    if name is not None:
        out.name = name
    return out


# ----------------------------------------------------------------------
# primitive accounting
# ----------------------------------------------------------------------
def native_primitives(stats: Stats) -> int:
    """Native logic-primitive count in a ledger: triple activations
    (TBA/TRA), i.e. compute ACPs/AAPs including materialized NOTs."""
    return (stats.counts.get(CommandType.ACTIVATE_TBA, 0)
            + stats.counts.get(CommandType.ACTIVATE_TRA, 0))


def _measure(run_fn, col_names, inverting: bool) -> int:
    """Exact per-row primitive count of an executor on dummy columns.

    Uses a counting-mode engine (paper staging policy for DRAM, so one
    TRA equals one primitive) with co-located single-row columns."""
    from repro.arch.primitives import make_engine

    if inverting:
        engine = make_engine("feram-2tnc", functional=False)
    else:
        engine = make_engine(
            "dram", functional=False,
            spec=DRAM_8GB.with_policy(StagingPolicy.PAPER))
    columns: dict[str, BitVector] = {}
    first: BitVector | None = None
    for col in col_names:
        vec = engine.allocate(64, col, group_with=first)
        first = first or vec
        columns[col] = vec
    run_fn(engine, columns)
    return native_primitives(engine.stats)
