"""Bulk-bitwise execution engines (the pLUTo-extension substitute).

:class:`BulkEngine` provides the technology-independent logical layer:
vector allocation and host IO, complement-flag algebra, and the compound
operations (AND/OR/NAND/NOR/XOR/XNOR/MAJ/select).  Technology subclasses
in :mod:`repro.arch.primitives` implement four hooks:

* ``_charge_logic`` — account one native row-parallel logic primitive
  (DRAM: AAP with staging policy; FeRAM: ACP with control amortization
  and co-location relocations);
* ``_charge_not`` — account a materialized row NOT;
* ``_charge_copy`` — account a row copy (RowClone / tri-state COPY);
* ``_native_inverting`` — whether the native triple-activation senses
  MINORITY (FeRAM/QNRO, inverting) or MAJORITY (DRAM).

The complement-flag algebra implements the paper's key observation that
QNRO reads are *inherently inverting*: a logical NOT is free until a
materialized payload is needed, and AND/OR/NAND/NOR each cost exactly one
native primitive when operand flags agree (mixed flags force one
materialization, which both engines charge honestly).

Functional mode carries packed uint64 payloads and computes every
operation bit-exactly (verified against numpy references in the test
suite); counting mode skips payloads for 1 GB-scale accounting runs.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.arch.bank import BitVector, RowAllocator, pack_bits, unpack_bits
from repro.arch.commands import Command, CommandType, Stats
from repro.arch.refresh import RefreshCharge, apply_refresh
from repro.arch.spec import MemorySpec
from repro.errors import ArchitectureError

__all__ = ["BulkEngine"]


class BulkEngine:
    """Technology-independent bulk-bitwise execution engine."""

    #: per-shape cap on pooled scratch payload buffers.  An op chain
    #: holds at most a few intermediates live at once, so a small pool
    #: captures all the reuse; without the cap a long-lived service
    #: would retain one buffer per distinct shape per concurrent chain
    #: forever (an unbounded leak under mixed-width traffic).
    SCRATCH_CAP = 4

    def __init__(self, spec: MemorySpec, *, functional: bool = True) -> None:
        self.spec = spec
        self.functional = functional
        self.allocator = RowAllocator(spec)
        self.stats = Stats()
        self._name_counter = itertools.count()
        self._finalized: RefreshCharge | None = None
        # Payload scratch pool, keyed by array shape: freed vectors donate
        # their buffers so op chains stop allocating a fresh payload per
        # intermediate (all logic writes through np.bitwise_*(..., out=)).
        self._scratch: dict[tuple[int, ...], list[np.ndarray]] = {}

    # ------------------------------------------------------------------
    # payload buffer pool
    # ------------------------------------------------------------------
    def _take_buffer(self, shape: tuple[int, ...]) -> np.ndarray:
        """A uint64 buffer of ``shape`` (pooled; contents arbitrary)."""
        pool = self._scratch.get(shape)
        if pool:
            return pool.pop()
        return np.empty(shape, dtype=np.uint64)

    def _release_buffer(self, buffer: np.ndarray | None) -> None:
        if buffer is None:
            return
        pool = self._scratch.setdefault(buffer.shape, [])
        if len(pool) < self.SCRATCH_CAP:  # beyond the cap: drop to GC
            pool.append(buffer)

    # ------------------------------------------------------------------
    # technology hooks
    # ------------------------------------------------------------------
    def _charge_logic(self, n_rows: int) -> None:
        raise NotImplementedError

    def _charge_not(self, n_rows: int) -> None:
        raise NotImplementedError

    def _charge_copy(self, n_rows: int) -> None:
        raise NotImplementedError

    def _native_inverting(self) -> bool:
        raise NotImplementedError

    def _before_logic(self, operands: list[BitVector],
                      result: BitVector) -> None:
        """Optional co-location / staging hook (FeRAM relocations)."""

    def _charge_constant(self, n_rows: int) -> None:
        """Initialize rows to a constant.  Default: host-style row write;
        DRAM overrides with an AAP copy from its preset 0/1 rows."""
        self.stats.record(self.spec, Command(CommandType.ROW_WRITE,
                                             repeat=n_rows, tag="const"))

    # ------------------------------------------------------------------
    # storage and host IO
    # ------------------------------------------------------------------
    def _auto_name(self, prefix: str) -> str:
        return f"{prefix}{next(self._name_counter)}"

    def allocate(self, n_bits: int, name: str | None = None, *,
                 group_with: BitVector | None = None) -> BitVector:
        """Reserve a vector (payload zeroed in functional mode).

        ``group_with`` places the vector in an existing vector's cell
        group — the planes of the same physical rows — so TBA operands
        need no relocation (how a host lays out natural operand pairs).
        """
        vector = self._allocate(n_bits, name, group_with=group_with)
        if self.functional:
            vector.payload.fill(0)
        return vector

    def _allocate(self, n_bits: int, name: str | None = None, *,
                  group_with: BitVector | None = None) -> BitVector:
        """Reserve a vector whose payload buffer is pooled, not zeroed.

        Internal fast path for ops that overwrite the whole payload
        anyway (logic results, copies); :meth:`allocate` adds the
        zero-fill the public contract promises.
        """
        vector = self.allocator.allocate(name or self._auto_name("v"),
                                         n_bits)
        if group_with is not None:
            self.allocator.join_group(vector, group_with)
        if self.functional:
            vector.payload = self._take_buffer(
                (vector.n_rows, self.spec.row_bits // 64))
        return vector

    def load(self, bits: np.ndarray, name: str | None = None, *,
             group_with: BitVector | None = None,
             charge: bool = True) -> BitVector:
        """Host write of a 0/1 array into a fresh vector.

        ``charge=False`` models operands already resident in memory (the
        PiM evaluation setting: the data lives there).
        """
        bits = np.asarray(bits)
        vector = self._allocate(bits.size, name, group_with=group_with)
        if self.functional:
            padded = np.zeros(vector.n_rows * self.spec.row_bits,
                              dtype=np.uint8)
            padded[: bits.size] = bits.astype(np.uint8)
            self._release_buffer(vector.payload)
            vector.payload = pack_bits(padded, self.spec.row_bits)
            vector.complemented = False
        if charge:
            self.stats.record(self.spec, Command(CommandType.ROW_WRITE,
                                                 repeat=vector.n_rows))
        return vector

    def store(self, vector: BitVector, *,
              charge: bool = True) -> np.ndarray | None:
        """Host readout of the logical value; None in counting mode."""
        self._check(vector)
        if charge:
            self.stats.record(self.spec, Command(CommandType.ROW_READ,
                                                 repeat=vector.n_rows))
        return vector.logical_bits()

    def constant(self, n_bits: int, bit: int,
                 name: str | None = None, *,
                 group_with: BitVector | None = None) -> BitVector:
        """A vector of all-0s or all-1s (one row-write sweep)."""
        if bit not in (0, 1):
            raise ArchitectureError("constant bit must be 0 or 1")
        vector = self._allocate(n_bits, name or self._auto_name("const"),
                                group_with=group_with)
        if self.functional:
            fill = np.uint64(0xFFFFFFFFFFFFFFFF) if bit else np.uint64(0)
            vector.payload[:] = fill
        self._charge_constant(vector.n_rows)
        return vector

    def free(self, *vectors: BitVector) -> None:
        for vector in vectors:
            payload = vector.payload
            self.allocator.free(vector)
            # Reclaim the payload buffer for the scratch pool (only after
            # a successful free, so double frees donate nothing twice).
            self._release_buffer(payload)

    def _check(self, *vectors: BitVector) -> None:
        for vector in vectors:
            if vector.freed:
                raise ArchitectureError(f"use after free: {vector.name!r}")
        widths = {v.n_bits for v in vectors}
        if len(widths) > 1:
            raise ArchitectureError(
                f"operand width mismatch: {sorted(widths)}")

    # ------------------------------------------------------------------
    # flag algebra primitives
    # ------------------------------------------------------------------
    def not_(self, vector: BitVector) -> BitVector:
        """Logical NOT — free flag flip (QNRO reads are inverting; the
        complement is resolved lazily)."""
        self._check(vector)
        vector.complemented = not vector.complemented
        return vector

    def materialize(self, vector: BitVector) -> BitVector:
        """Force the payload to equal the logical value (1 native NOT if
        the flag is set, otherwise free)."""
        self._check(vector)
        if not vector.complemented:
            return vector
        self._charge_not(vector.n_rows)
        if self.functional:
            np.invert(vector.payload, out=vector.payload)
        vector.complemented = False
        return vector

    def copy(self, vector: BitVector, name: str | None = None) -> BitVector:
        """Row copy into a fresh vector (RowClone / tri-state COPY)."""
        self._check(vector)
        out = self._allocate(vector.n_bits, name or self._auto_name("cp"))
        self._charge_copy(vector.n_rows)
        if self.functional:
            np.copyto(out.payload, vector.payload)
        out.complemented = vector.complemented
        self.allocator.join_group(out, vector)
        return out

    def _force_flag(self, vector: BitVector, flag: bool) -> None:
        """Set the complement flag to ``flag``, inverting the payload if
        needed (one materialized NOT); logical value is unchanged."""
        if vector.complemented == flag:
            return
        self._charge_not(vector.n_rows)
        if self.functional:
            np.invert(vector.payload, out=vector.payload)
        vector.complemented = flag

    def force_flag(self, vector: BitVector, flag: bool) -> BitVector:
        """Public flag steering for schedulers (the expression compiler):
        re-encode the vector so its complement flag equals ``flag``,
        preserving the logical value (costs one NOT when it differs)."""
        self._check(vector)
        self._force_flag(vector, flag)
        return vector

    def _equalize_flags(self, a: BitVector, b: BitVector) -> bool:
        """Make the operand flags agree; returns the common flag."""
        if a.complemented != b.complemented:
            # Materialize the complemented operand (one NOT).
            target = a if a.complemented else b
            self.materialize(target)
        return a.complemented

    def _native_logic3(self, operands: list[BitVector], control_bit: int |
                       None, name: str | None) -> BitVector:
        """One triple-activation on payloads.

        ``operands`` holds two vectors plus ``control_bit`` (a constant
        plane/row), or three vectors with ``control_bit=None``.  Returns
        the payload-level MAJ (DRAM) or MIN (FeRAM) as a fresh vector
        with flag 0 — callers fix up logical flags.
        """
        out = self._allocate(operands[0].n_bits,
                             name or self._auto_name("t"))
        self._before_logic(operands, out)
        self._charge_logic(operands[0].n_rows)
        if self.functional:
            result = out.payload
            if control_bit is None:
                pa, pb, pc = (op.payload for op in operands)
                # MAJ(a, b, c) = (a&b) | (a&c) | (b&c), accumulated into
                # the result buffer with one pooled scratch temporary.
                scratch = self._take_buffer(pa.shape)
                np.bitwise_and(pa, pb, out=result)
                np.bitwise_and(pa, pc, out=scratch)
                np.bitwise_or(result, scratch, out=result)
                np.bitwise_and(pb, pc, out=scratch)
                np.bitwise_or(result, scratch, out=result)
                self._release_buffer(scratch)
            else:
                # Constant third plane folds the majority to a two-input
                # op: MAJ(a, b, 1) = a|b and MAJ(a, b, 0) = a&b.
                pa, pb = operands[0].payload, operands[1].payload
                if control_bit:
                    np.bitwise_or(pa, pb, out=result)
                else:
                    np.bitwise_and(pa, pb, out=result)
            if self._native_inverting():
                np.invert(result, out=result)
        out.complemented = self._native_inverting()
        return out

    # ------------------------------------------------------------------
    # logical operations (shared by both technologies)
    # ------------------------------------------------------------------
    def _and_or(self, a: BitVector, b: BitVector, *, op_or: bool,
                out_complement: bool, name: str | None) -> BitVector:
        self._check(a, b)
        flag = self._equalize_flags(a, b)
        # De Morgan on payloads: with both flags f, AND of logical values
        # is MAJ(P, P, c) with c/flag chosen below.
        if not flag:
            control = 1 if op_or else 0
            result_flag = out_complement
        else:
            # AND(V) = ~(Pa | Pb);  OR(V) = ~(Pa & Pb)
            control = 0 if op_or else 1
            result_flag = not out_complement
        out = self._native_logic3([a, b], control, name)
        # _native_logic3 leaves flag = native inversion (logical value =
        # MAJ of payloads); fold in the target complement on top.
        out.complemented ^= result_flag
        return out

    def and_(self, a: BitVector, b: BitVector,
             name: str | None = None) -> BitVector:
        """Bulk AND (one native primitive when flags agree)."""
        return self._and_or(a, b, op_or=False, out_complement=False,
                            name=name)

    def or_(self, a: BitVector, b: BitVector,
            name: str | None = None) -> BitVector:
        return self._and_or(a, b, op_or=True, out_complement=False,
                            name=name)

    def nand(self, a: BitVector, b: BitVector,
             name: str | None = None) -> BitVector:
        """The paper's native FeRAM op: MIN(A, B, control=0)."""
        return self._and_or(a, b, op_or=False, out_complement=True,
                            name=name)

    def nor(self, a: BitVector, b: BitVector,
            name: str | None = None) -> BitVector:
        """The paper's native FeRAM op: MIN(A, B, control=1)."""
        return self._and_or(a, b, op_or=True, out_complement=True,
                            name=name)

    def andnot(self, a: BitVector, b: BitVector,
               name: str | None = None) -> BitVector:
        """A AND (NOT B) — used by set-difference and masked updates.

        When both operands are the same vector the temporary flag flip
        would invert *both* sides at once (A AND NOT A would read back
        as A); the identity result is an all-zeros vector, produced
        without touching the shared operand.
        """
        self._check(a, b)
        if a is b:
            return self.constant(a.n_bits, 0,
                                 name or self._auto_name("zero"))
        self.not_(b)
        try:
            out = self.and_(a, b, name)
        finally:
            self.not_(b)  # restore caller's view
        return out

    def xor(self, a: BitVector, b: BitVector,
            name: str | None = None) -> BitVector:
        """Bulk XOR = AND(OR(a, b), NAND(a, b)) on payloads.

        Flags pass through XOR freely — XOR(Va, Vb) = XOR(Pa, Pb)^fa^fb —
        so the payload recipe runs on the raw payloads and the operand
        flags are folded into the result flag.  Chained XORs (CRC,
        ciphers) then never pay flag-materialization NOTs.

        The operand flags are *read, never written*: the payload-level
        OR/NAND are issued directly as native triple-activations instead
        of temporarily clearing ``a.complemented``/``b.complemented``,
        so concurrent readers of the operands (the service layer runs
        queries over shared columns) never observe a flipped flag, and
        aliased operands (``xor(a, a)`` = 0) need no special case.
        """
        self._check(a, b)
        flag = a.complemented ^ b.complemented
        # Payload-level OR: MAJ/MIN with an all-ones control plane; the
        # native-inversion flag left by _native_logic3 makes the
        # *logical* value of t_or equal Pa | Pb on both technologies.
        t_or = self._native_logic3([a, b], 1, None)
        # Payload-level NAND: the AND primitive plus one free flag flip.
        t_nand = self.not_(self._native_logic3([a, b], 0, None))
        out = self.and_(t_or, t_nand, name or self._auto_name("xor"))
        self.free(t_or, t_nand)
        out.complemented ^= flag
        return out

    def xnor(self, a: BitVector, b: BitVector,
             name: str | None = None) -> BitVector:
        """Bulk XNOR (BNN's multiply): free complement of XOR."""
        return self.not_(self.xor(a, b, name))

    def majority(self, a: BitVector, b: BitVector, c: BitVector,
                 name: str | None = None) -> BitVector:
        """Three-operand majority (full-adder carry).

        Majority is self-dual, so a common flag passes through freely;
        mixed flags materialize the minority-flag operands.
        """
        self._check(a, b, c)
        operands = [a, b, c]
        flags = [v.complemented for v in operands]
        if len(set(flags)) > 1:
            # Equalize toward the majority flag value: fewest NOTs.
            common = flags.count(True) >= 2
            for vector in operands:
                self._force_flag(vector, common)
        else:
            common = flags[0]
        out = self._native_logic3(operands, None, name)
        out.complemented ^= common
        return out

    def select(self, mask: BitVector, a: BitVector, b: BitVector,
               name: str | None = None) -> BitVector:
        """(mask AND a) OR (NOT mask AND b) — bulk multiplexer."""
        self._check(mask, a, b)
        picked_a = self.and_(mask, a)
        picked_b = self.andnot(b, mask)
        out = self.or_(picked_a, picked_b, name or self._auto_name("sel"))
        self.free(picked_a, picked_b)
        return out

    def match(self, columns, key, mask=None,
              name: str | None = None) -> BitVector:
        """CAM search over a column group: result bit *i* is 1 when
        every cared column's bit *i* equals its key bit (an XNOR-reduce
        over the key).

        XNOR against a constant key bit degenerates to the column
        itself (key 1) or its complement (key 0, a free flag flip), so
        the search is an AND-fold of literals: positives chain through
        ``and_``, negated literals through ``andnot``/``nor``.  Every
        step charges native read primitives through the ordinary
        compound ops, so the ledger prices a search exactly as the
        2T-nC read path does.  ``mask`` selects compared positions
        (1 = compare); an all-masked search is the all-ones vector.
        """
        columns = list(columns)
        if not columns:
            raise ArchitectureError("match needs at least one column")
        self._check(*columns)
        key = [int(k) for k in key]
        mask = [1] * len(columns) if mask is None else [int(m) for m in mask]
        if len(key) != len(columns) or len(mask) != len(columns):
            raise ArchitectureError(
                f"match key/mask length must equal the {len(columns)} "
                f"columns, got {len(key)}/{len(mask)}")
        if any(k not in (0, 1) for k in key + mask):
            raise ArchitectureError("match key/mask bits must be 0 or 1")
        positives = [v for v, k, m in zip(columns, key, mask) if m and k]
        negatives = [v for v, k, m in zip(columns, key, mask)
                     if m and not k]
        if not positives and not negatives:
            return self.constant(columns[0].n_bits, 1,
                                 name or self._auto_name("match"))
        if positives:
            acc, owned = positives[0], False
            for vec in positives[1:]:
                nxt = self.and_(acc, vec)
                if owned:
                    self.free(acc)
                acc, owned = nxt, True
        elif len(negatives) >= 2:
            # All-negated head: ~a & ~b is one native NOR.
            acc = self.nor(negatives.pop(0), negatives.pop(0))
            owned = True
        else:
            acc = self.not_(self.copy(negatives.pop(0)))
            owned = True
        for vec in negatives:
            nxt = self.andnot(acc, vec)
            if owned:
                self.free(acc)
            acc, owned = nxt, True
        if not owned:
            acc = self.copy(acc)
        if name is not None:
            acc.name = name
        return acc

    # ------------------------------------------------------------------
    # finalize / report
    # ------------------------------------------------------------------
    def finalize(self) -> Stats:
        """Charge background refresh (DRAM) for the allocated footprint
        and return the ledger."""
        if self._finalized is None:
            self._finalized = apply_refresh(
                self.stats, self.spec,
                footprint_rows=self.allocator.peak_rows_used)
        return self.stats

    @property
    def refresh_charge(self) -> RefreshCharge | None:
        return self._finalized

    # Convenience re-exports for workloads/tests.
    @staticmethod
    def unpack(words: np.ndarray) -> np.ndarray:
        return unpack_bits(words)
