"""Compound bulk-bitwise building blocks: bit-sliced arithmetic.

Workloads that need arithmetic (CRC feedback, BNN popcount) use the
classic bit-sliced layout: a k-bit quantity across N parallel lanes is k
row-vectors (planes), LSB first.  Shifts are plane renames (free — row
addressing), and adders are built from the engines' XOR/MAJ primitives,
so every cost lands in the same AAP/ACP accounting as plain logic ops.
"""

from __future__ import annotations

from repro.arch.bank import BitVector
from repro.arch.engine import BulkEngine
from repro.errors import ArchitectureError

__all__ = [
    "full_adder",
    "half_adder",
    "ripple_add",
    "add_constant",
    "popcount",
    "greater_equal_const",
]


def half_adder(engine: BulkEngine, a: BitVector, b: BitVector,
               ) -> tuple[BitVector, BitVector]:
    """(sum, carry) of two 1-bit lanes."""
    return engine.xor(a, b), engine.and_(a, b)


def full_adder(engine: BulkEngine, a: BitVector, b: BitVector,
               cin: BitVector) -> tuple[BitVector, BitVector]:
    """(sum, carry): sum = a⊕b⊕cin, carry = MAJ(a, b, cin)."""
    t = engine.xor(a, b)
    total = engine.xor(t, cin)
    carry = engine.majority(a, b, cin)
    engine.free(t)
    return total, carry


def ripple_add(engine: BulkEngine, a: list[BitVector], b: list[BitVector],
               ) -> list[BitVector]:
    """Bit-sliced addition; result has ``max(len) + 1`` planes.

    Consumes neither input (callers free operands).
    """
    if not a or not b:
        raise ArchitectureError("ripple_add requires non-empty slices")
    width = max(len(a), len(b))
    n_bits = a[0].n_bits
    zero = engine.constant(n_bits, 0, "ra_zero", group_with=a[0])
    padded_a = list(a) + [zero] * (width - len(a))
    padded_b = list(b) + [zero] * (width - len(b))
    out: list[BitVector] = []
    carry: BitVector | None = None
    for plane_a, plane_b in zip(padded_a, padded_b):
        if carry is None:
            s, carry = half_adder(engine, plane_a, plane_b)
        else:
            s, new_carry = full_adder(engine, plane_a, plane_b, carry)
            engine.free(carry)
            carry = new_carry
        out.append(s)
    out.append(carry)
    engine.free(zero)
    return out


def add_constant(engine: BulkEngine, a: list[BitVector], constant: int,
                 ) -> list[BitVector]:
    """Bit-sliced ``a + constant`` (constant broadcast to all lanes)."""
    if constant < 0:
        raise ArchitectureError("constant must be non-negative")
    width = max(len(a), constant.bit_length())
    n_bits = a[0].n_bits
    planes = [engine.constant(n_bits, (constant >> k) & 1, f"k{k}",
                              group_with=a[0])
              for k in range(width)]
    out = ripple_add(engine, a, planes)
    engine.free(*planes)
    return out


def popcount(engine: BulkEngine, bits: list[BitVector],
             ) -> list[BitVector]:
    """Per-lane population count of N 1-bit vectors → bit-sliced count.

    Balanced adder tree: O(N) full adders, ⌈log2(N+1)⌉ result planes.
    Consumes nothing; intermediate slices are freed.
    """
    if not bits:
        raise ArchitectureError("popcount requires at least one vector")
    # Each item is a bit-sliced partial count; start with 1-bit counts.
    queue: list[list[BitVector]] = [[engine.copy(v, "pc_in")] for v in bits]
    while len(queue) > 1:
        next_queue: list[list[BitVector]] = []
        for i in range(0, len(queue) - 1, 2):
            total = ripple_add(engine, queue[i], queue[i + 1])
            engine.free(*queue[i], *queue[i + 1])
            next_queue.append(total)
        if len(queue) % 2:
            next_queue.append(queue[-1])
        queue = next_queue
    return queue[0]


def greater_equal_const(engine: BulkEngine, a: list[BitVector],
                        threshold: int) -> BitVector:
    """Per-lane ``value(a) >= threshold`` as a 1-bit vector.

    Computed as the carry-out of ``a + (2^w - threshold)`` — the standard
    borrow trick, entirely in bulk ops.
    """
    if threshold < 0:
        raise ArchitectureError("threshold must be non-negative")
    width = len(a)
    if threshold == 0:
        return engine.constant(a[0].n_bits, 1, "ge_always")
    if threshold > (1 << width):
        return engine.constant(a[0].n_bits, 0, "ge_never")
    complement = (1 << width) - threshold
    n_bits = a[0].n_bits
    planes = [engine.constant(n_bits, (complement >> k) & 1, f"thr{k}",
                              group_with=a[0])
              for k in range(width)]
    total = ripple_add(engine, a, planes)
    engine.free(*planes)
    carry_out = total[-1]
    result = engine.copy(carry_out, "ge_out")
    engine.free(*total)
    return result
