"""DRAM refresh model (64 ms retention, paper §VI).

Refresh is charged at finalize time: the engine's compute/IO cycles set a
wall-clock time, during which the whole 8 GB device must be swept every
``refresh_interval_s``.  Energy scales with *all* rows (every row is
refreshed); stall cycles scale with *rows per bank* (banks refresh in
parallel but the PiM execution stalls while its bank refreshes).  Since
stalls lengthen the run and therefore add refresh, the model iterates to
its fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.commands import CommandType, Stats
from repro.arch.spec import MemorySpec

__all__ = ["RefreshCharge", "apply_refresh"]


@dataclass(frozen=True)
class RefreshCharge:
    """Refresh totals added to a run."""

    sweeps: float
    rows_refreshed: float
    energy_j: float
    stall_cycles: int


def apply_refresh(stats: Stats, spec: MemorySpec,
                  footprint_rows: int | None = None) -> RefreshCharge:
    """Charge background refresh for the run recorded in ``stats``.

    ``footprint_rows`` bounds the refreshed region to the workload's
    allocated rows (the pLUTo-style per-workload accounting; rows the
    workload never touches sit in self-refresh outside the comparison).
    ``None`` refreshes the whole device.

    Returns the applied totals (all-zero for refresh-free technologies).
    """
    if spec.refresh_interval_s is None:
        return RefreshCharge(0.0, 0.0, 0.0, 0)
    rows_total = spec.n_rows if footprint_rows is None \
        else min(footprint_rows, spec.n_rows)
    rows_per_bank = max(1, rows_total // spec.n_banks)
    base_cycles = stats.total_cycles
    row_cycles = spec.t_activate + spec.t_precharge
    stall = 0.0
    sweeps = 0.0
    for _ in range(8):  # fixed point: stalls extend wall time
        wall = (base_cycles + stall) * spec.cycle_time_s
        sweeps = wall / spec.refresh_interval_s
        stall = sweeps * rows_per_bank * row_cycles
    rows_refreshed = sweeps * rows_total
    energy = rows_refreshed * spec.refresh_row_energy
    stall_cycles = int(round(stall))
    stats.energy_j["refresh"] = stats.energy_j.get("refresh", 0.0) + energy
    stats.cycles["refresh"] = stats.cycles.get("refresh", 0) + stall_cycles
    stats.counts[CommandType.REFRESH] = stats.counts.get(
        CommandType.REFRESH, 0) + int(round(rows_refreshed))
    return RefreshCharge(sweeps=sweeps, rows_refreshed=rows_refreshed,
                         energy_j=energy, stall_cycles=stall_cycles)
