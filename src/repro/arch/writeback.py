"""Write-back economics: QNRO vs destructive sensing.

Quantifies the paper's §II claim that QNRO "allows multiple reads before
P_FE changes due to accumulative switching disturb, minimizing
write-backs and enhancing endurance":

* a destructive-read memory (1T-1C FeRAM / DRAM) must restore the row
  after *every* read;
* a QNRO memory schedules a scrub (write-back) only once the
  accumulated disturb approaches the sense margin — every
  ``reads_until_disturb(...) / safety_factor`` reads.

The model combines the device-level disturb analysis from
:mod:`repro.ferro.reliability` with the row-command energies of the
architecture spec, yielding energy-per-read and cell write-cycles-per-
read (the endurance currency) for both policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.commands import Command, CommandType, Stats
from repro.arch.spec import FERAM_2TNC_8GB, MemorySpec
from repro.errors import ArchitectureError
from repro.ferro.materials import NVDRAM_CAL, FerroMaterial
from repro.ferro.reliability import reads_until_disturb

__all__ = ["WritebackPolicy", "ScrubAccountant",
           "compare_writeback_policies", "policy_for_spec"]


@dataclass(frozen=True)
class WritebackPolicy:
    """Cost of a read stream under one write-back discipline."""

    name: str
    reads_per_writeback: int
    energy_per_read_j: float
    write_cycles_per_read: float

    def endurance_reads(self, cell_endurance_cycles: float) -> float:
        """Reads sustainable before the cell's write endurance is spent."""
        if self.write_cycles_per_read <= 0:
            return float("inf")
        return cell_endurance_cycles / self.write_cycles_per_read


def compare_writeback_policies(
        *, material: FerroMaterial = NVDRAM_CAL,
        spec: MemorySpec = FERAM_2TNC_8GB,
        v_read: float = 0.5, t_read: float = 50e-9,
        margin: float = 0.5, safety_factor: float = 2.0,
        ) -> tuple[WritebackPolicy, WritebackPolicy]:
    """(destructive, qnro) policies for the given read condition.

    ``v_read`` is the *effective* voltage across the capacitor during a
    read activation — the cell's capacitive divider leaves ~0.45-0.55 V
    of the 0.75 V WBL rail on the MFM (see the behavioural cell's charge
    balance).  ``margin`` is the tolerable fraction of lost polarization
    before a scrub; ``safety_factor`` divides the device-model read
    budget to set the actual scrub period (guard band against
    variation).  Note the spec's ``control_rewrite_period`` of 32 is a
    further ~8x more conservative than this budget.
    """
    if safety_factor < 1.0:
        raise ArchitectureError("safety_factor must be >= 1")
    read_energy = spec.e_activate + spec.e_precharge
    writeback_energy = spec.e_row_write

    destructive = WritebackPolicy(
        name="destructive (restore every read)",
        reads_per_writeback=1,
        energy_per_read_j=read_energy + writeback_energy,
        write_cycles_per_read=1.0,
    )

    budget = reads_until_disturb(material, v_read=v_read, t_read=t_read,
                                 margin=margin)
    period = max(1, int(budget / safety_factor))
    qnro = WritebackPolicy(
        name=f"QNRO (scrub every {period} reads)",
        reads_per_writeback=period,
        energy_per_read_j=read_energy + writeback_energy / period,
        write_cycles_per_read=1.0 / period,
    )
    return destructive, qnro


def policy_for_spec(spec: MemorySpec, **condition) -> WritebackPolicy:
    """The write-back discipline a technology actually runs under.

    DRAM (and 1T-1C FeRAM) sensing is destructive — every read
    restores the row; a 2T-nC QNRO memory scrubs only as accumulated
    disturb approaches the sense margin.  ``condition`` forwards the
    read-condition keywords of :func:`compare_writeback_policies`.
    """
    destructive, qnro = compare_writeback_policies(spec=spec,
                                                   **condition)
    return destructive if spec.technology == "dram" else qnro


class ScrubAccountant:
    """Mutation-path energy ledger for a served, *mutable* column table.

    The query executors charge compute reads (ACPs/AAPs); this class
    charges the **data-maintenance** side the paper's QNRO claim is
    about, per column and per shard:

    * **writes** — an in-place column mutation dirties only the rows
      its bit span touches on each shard; every dirty row costs one
      ``ROW_WRITE`` (a TBA write burst on FeRAM, a restore write on
      DRAM) and freshly rewrites the cells' polarization, so the
      shard's read-disturb counter resets;
    * **read disturb** — each query execution that references a column
      activates its rows once; after
      :attr:`WritebackPolicy.reads_per_writeback` accumulated reads a
      shard must be scrubbed (``ROW_WRITE`` per row).  Under the
      destructive policy the period is 1 — the DRAM restore-every-read
      baseline — while QNRO amortizes one scrub over hundreds of
      reads.

    All charges land in :attr:`stats`, a ledger the service reports
    *separately* from the compute ledger (maintenance energy is not
    attributed to individual queries).
    """

    def __init__(self, spec: MemorySpec, shard_rows: list[int], *,
                 policy: WritebackPolicy | None = None) -> None:
        self.spec = spec
        self.shard_rows = list(shard_rows)
        self.policy = policy or policy_for_spec(spec)
        self.stats = Stats()
        #: column -> per-shard reads since that shard's last scrub/write
        self._reads: dict[str, list[int]] = {}
        self.reads_noted = 0
        self.rows_written = 0
        self.scrubs = 0           #: (column, shard) scrub events
        self.scrub_rows = 0
        self.write_energy_j = 0.0
        self.scrub_energy_j = 0.0

    def _counters(self, column: str) -> list[int]:
        return self._reads.setdefault(column, [0] * len(self.shard_rows))

    def forget(self, column: str) -> None:
        """Drop a column's disturb counters (the column was dropped)."""
        self._reads.pop(column, None)

    def note_write(self, column: str, rows_by_shard: list[int],
                   ) -> Stats:
        """Charge a mutation that dirtied ``rows_by_shard[i]`` rows on
        shard ``i``; returns the Stats delta of this write alone."""
        delta = Stats()
        counters = self._counters(column)
        for index, n_rows in enumerate(rows_by_shard):
            if n_rows:
                counters[index] = 0  # fresh polarization on this shard
        total = sum(rows_by_shard)
        if total:
            delta.record(self.spec,
                         Command(CommandType.ROW_WRITE, repeat=total))
            self.rows_written += total
            self.write_energy_j += delta.total_energy_j
            self.stats.iadd(delta)
        return delta

    def note_read(self, column: str, n: int = 1) -> int:
        """Accrue ``n`` row activations of every shard of ``column``;
        charges (and returns the count of) any scrubs now due."""
        period = self.policy.reads_per_writeback
        counters = self._counters(column)
        self.reads_noted += n
        scrubbed = 0
        for index, rows in enumerate(self.shard_rows):
            counters[index] += n
            due, counters[index] = divmod(counters[index], period)
            if due:
                scrubbed += due
                self.scrubs += due
                self.scrub_rows += due * rows
                delta = Stats()
                delta.record(self.spec,
                             Command(CommandType.ROW_WRITE,
                                     repeat=due * rows))
                self.scrub_energy_j += delta.total_energy_j
                self.stats.iadd(delta)
        return scrubbed

    def reads_since_scrub(self, column: str) -> list[int]:
        """Per-shard accumulated disturb reads (introspection)."""
        return list(self._counters(column))

    def summary(self) -> dict:
        """JSON-safe ledger snapshot for service counters."""
        return {
            "policy": self.policy.name,
            "reads_per_writeback": self.policy.reads_per_writeback,
            "reads_noted": self.reads_noted,
            "rows_written": self.rows_written,
            "scrubs": self.scrubs,
            "scrub_rows": self.scrub_rows,
            "write_energy_nj": self.write_energy_j * 1e9,
            "scrub_energy_nj": self.scrub_energy_j * 1e9,
            "energy_nj": self.stats.total_energy_j * 1e9,
            "cycles": self.stats.total_cycles,
        }
