"""Write-back economics: QNRO vs destructive sensing.

Quantifies the paper's §II claim that QNRO "allows multiple reads before
P_FE changes due to accumulative switching disturb, minimizing
write-backs and enhancing endurance":

* a destructive-read memory (1T-1C FeRAM / DRAM) must restore the row
  after *every* read;
* a QNRO memory schedules a scrub (write-back) only once the
  accumulated disturb approaches the sense margin — every
  ``reads_until_disturb(...) / safety_factor`` reads.

The model combines the device-level disturb analysis from
:mod:`repro.ferro.reliability` with the row-command energies of the
architecture spec, yielding energy-per-read and cell write-cycles-per-
read (the endurance currency) for both policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.spec import FERAM_2TNC_8GB, MemorySpec
from repro.errors import ArchitectureError
from repro.ferro.materials import NVDRAM_CAL, FerroMaterial
from repro.ferro.reliability import reads_until_disturb

__all__ = ["WritebackPolicy", "compare_writeback_policies"]


@dataclass(frozen=True)
class WritebackPolicy:
    """Cost of a read stream under one write-back discipline."""

    name: str
    reads_per_writeback: int
    energy_per_read_j: float
    write_cycles_per_read: float

    def endurance_reads(self, cell_endurance_cycles: float) -> float:
        """Reads sustainable before the cell's write endurance is spent."""
        if self.write_cycles_per_read <= 0:
            return float("inf")
        return cell_endurance_cycles / self.write_cycles_per_read


def compare_writeback_policies(
        *, material: FerroMaterial = NVDRAM_CAL,
        spec: MemorySpec = FERAM_2TNC_8GB,
        v_read: float = 0.5, t_read: float = 50e-9,
        margin: float = 0.5, safety_factor: float = 2.0,
        ) -> tuple[WritebackPolicy, WritebackPolicy]:
    """(destructive, qnro) policies for the given read condition.

    ``v_read`` is the *effective* voltage across the capacitor during a
    read activation — the cell's capacitive divider leaves ~0.45-0.55 V
    of the 0.75 V WBL rail on the MFM (see the behavioural cell's charge
    balance).  ``margin`` is the tolerable fraction of lost polarization
    before a scrub; ``safety_factor`` divides the device-model read
    budget to set the actual scrub period (guard band against
    variation).  Note the spec's ``control_rewrite_period`` of 32 is a
    further ~8x more conservative than this budget.
    """
    if safety_factor < 1.0:
        raise ArchitectureError("safety_factor must be >= 1")
    read_energy = spec.e_activate + spec.e_precharge
    writeback_energy = spec.e_row_write

    destructive = WritebackPolicy(
        name="destructive (restore every read)",
        reads_per_writeback=1,
        energy_per_read_j=read_energy + writeback_energy,
        write_cycles_per_read=1.0,
    )

    budget = reads_until_disturb(material, v_read=v_read, t_read=t_read,
                                 margin=margin)
    period = max(1, int(budget / safety_factor))
    qnro = WritebackPolicy(
        name=f"QNRO (scrub every {period} reads)",
        reads_per_writeback=period,
        energy_per_read_j=read_energy + writeback_energy / period,
        write_cycles_per_read=1.0 / period,
    )
    return destructive, qnro
