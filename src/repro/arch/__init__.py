"""Command-level memory-architecture simulator (pLUTo-extension
substitute): bulk-bitwise execution on DRAM (Ambit AAP) and 2T-nC FeRAM
(ACP), with the paper's §VI energy/latency constants, 64 ms DRAM refresh,
and functional (bit-exact) plus counting execution modes.
"""

from repro.arch.bank import BitVector, RowAllocator, pack_bits, unpack_bits
from repro.arch.bitwise import (
    add_constant,
    full_adder,
    greater_equal_const,
    half_adder,
    popcount,
    ripple_add,
)
from repro.arch.commands import Command, CommandType, Stats, command_cost
from repro.arch.engine import BulkEngine
from repro.arch.expr import (
    And,
    AndNot,
    Col,
    CompiledQuery,
    Const,
    Expr,
    Maj,
    Nand,
    Nor,
    Not,
    Or,
    Select,
    Xnor,
    Xor,
    canonical_key,
    compile_expr,
    compile_for,
    naive_run,
    native_primitives,
    parse,
)
from repro.arch.primitives import DramAmbitEngine, FeramAcpEngine, make_engine
from repro.arch.program import (
    CompiledProgram,
    Program,
    ProgramBuilder,
    compile_program,
    parse_program,
)
from repro.arch.refresh import RefreshCharge, apply_refresh
from repro.arch.spec import DRAM_8GB, FERAM_2TNC_8GB, MemorySpec, StagingPolicy
from repro.arch.writeback import WritebackPolicy, compare_writeback_policies

__all__ = [
    "Expr",
    "Col",
    "Const",
    "Not",
    "And",
    "Or",
    "Nand",
    "Nor",
    "Xor",
    "Xnor",
    "AndNot",
    "Maj",
    "Select",
    "parse",
    "canonical_key",
    "CompiledQuery",
    "compile_expr",
    "compile_for",
    "Program",
    "ProgramBuilder",
    "CompiledProgram",
    "compile_program",
    "parse_program",
    "naive_run",
    "native_primitives",
    "MemorySpec",
    "DRAM_8GB",
    "FERAM_2TNC_8GB",
    "StagingPolicy",
    "Command",
    "CommandType",
    "Stats",
    "command_cost",
    "BitVector",
    "RowAllocator",
    "pack_bits",
    "unpack_bits",
    "BulkEngine",
    "DramAmbitEngine",
    "FeramAcpEngine",
    "make_engine",
    "RefreshCharge",
    "apply_refresh",
    "WritebackPolicy",
    "compare_writeback_policies",
    "full_adder",
    "half_adder",
    "ripple_add",
    "add_constant",
    "popcount",
    "greater_equal_const",
]
