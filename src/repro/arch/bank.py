"""Bit-vector storage handles and the row allocator.

A :class:`BitVector` is a bulk operand: logically ``n_bits`` wide, laid
out across ``n_rows`` physical rows of the memory.  In functional mode it
carries packed ``uint64`` payload data (shape ``(n_rows, words_per_row)``)
plus a *complement flag*: the logical value is ``payload ^ flag``.  The
flag is how the engines exploit the paper's observation that QNRO reads
are inherently inverting — a NOT costs nothing until a materialized
payload is required.

The allocator hands out row blocks round-robin across banks and, for
FeRAM, tracks *cell groups*: vectors co-located in the planes of the same
physical rows can feed a TBA directly, while operands from different
groups need one relocation ACP (counted by the engine).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.arch.spec import MemorySpec
from repro.errors import ArchitectureError

__all__ = ["BitVector", "RowAllocator", "pack_bits", "unpack_bits"]

WORD_BITS = 64


def pack_bits(bits: np.ndarray, row_bits: int) -> np.ndarray:
    """Pack a flat 0/1 array into ``(n_rows, words_per_row)`` uint64.

    The input length must be a multiple of ``row_bits``.
    """
    bits = np.asarray(bits)
    if bits.ndim != 1:
        raise ArchitectureError("bits must be 1-D")
    if bits.size % row_bits:
        raise ArchitectureError(
            f"bit count {bits.size} is not a multiple of row size {row_bits}")
    packed = np.packbits(bits.astype(np.uint8), bitorder="little")
    words = packed.view(np.uint64) if packed.size % 8 == 0 else None
    if words is None:
        raise ArchitectureError("row_bits must be a multiple of 64")
    return words.reshape(-1, row_bits // WORD_BITS).copy()


def unpack_bits(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_bits`: flat 0/1 uint8 array."""
    flat = np.ascontiguousarray(words).reshape(-1).view(np.uint8)
    return np.unpackbits(flat, bitorder="little")


@dataclass
class BitVector:
    """Handle to a bulk operand resident in the simulated memory.

    Attributes
    ----------
    name:
        Debug label.
    n_bits:
        Logical width (= n_rows × row_bits).
    n_rows:
        Physical rows spanned.
    payload:
        Packed data (functional mode) or None (counting mode).
    complemented:
        If True the logical value is the bitwise NOT of the payload.
    group:
        FeRAM co-location group id (via the allocator's union-find).
    bank_start:
        First bank of the round-robin span (for power-map attribution).
    """

    name: str
    n_bits: int
    n_rows: int
    payload: np.ndarray | None = None
    complemented: bool = False
    group: int = -1
    bank_start: int = 0
    freed: bool = field(default=False, repr=False)

    def value(self) -> np.ndarray | None:
        """Logical packed words (payload with the flag resolved)."""
        if self.payload is None:
            return None
        return ~self.payload if self.complemented else self.payload.copy()

    def logical_bits(self) -> np.ndarray | None:
        """Logical value as a flat 0/1 array (functional mode only).

        The complement flag is resolved on the unpacked bits in place,
        skipping the intermediate packed-word copy of :meth:`value`.
        """
        if self.payload is None:
            return None
        bits = unpack_bits(self.payload)[: self.n_bits]
        if self.complemented:
            np.bitwise_xor(bits, 1, out=bits)
        return bits


class RowAllocator:
    """Round-robin row-block allocator with FeRAM cell-group tracking."""

    def __init__(self, spec: MemorySpec) -> None:
        self.spec = spec
        self._rows_used = 0
        self._peak_rows_used = 0
        self._next_bank = 0
        self._group_counter = itertools.count()
        self._group_parent: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def rows_used(self) -> int:
        return self._rows_used

    @property
    def peak_rows_used(self) -> int:
        """High-water mark — the refresh footprint of the run."""
        return self._peak_rows_used

    @property
    def rows_free(self) -> int:
        return self.spec.n_rows * self.spec.n_planes - self._rows_used

    def rows_for_bits(self, n_bits: int) -> int:
        row_bits = self.spec.row_bits
        return (n_bits + row_bits - 1) // row_bits

    def allocate(self, name: str, n_bits: int) -> BitVector:
        """Reserve rows for a vector of ``n_bits`` logical bits."""
        if n_bits <= 0:
            raise ArchitectureError("vector must have positive width")
        n_rows = self.rows_for_bits(n_bits)
        if n_rows > self.rows_free:
            raise ArchitectureError(
                f"out of memory allocating {name!r}: need {n_rows} rows, "
                f"{self.rows_free} free")
        self._rows_used += n_rows
        self._peak_rows_used = max(self._peak_rows_used, self._rows_used)
        group = next(self._group_counter)
        self._group_parent[group] = group
        vector = BitVector(name=name, n_bits=n_bits, n_rows=n_rows,
                           group=group, bank_start=self._next_bank)
        self._next_bank = (self._next_bank + 1) % self.spec.n_banks
        return vector

    def free(self, vector: BitVector) -> None:
        if vector.freed:
            raise ArchitectureError(f"double free of {vector.name!r}")
        vector.freed = True
        vector.payload = None
        self._rows_used -= vector.n_rows

    # ------------------------------------------------------------------
    # FeRAM co-location groups (union-find)
    # ------------------------------------------------------------------
    def group_root(self, group: int) -> int:
        parent = self._group_parent
        root = group
        while parent[root] != root:
            root = parent[root]
        while parent[group] != root:  # path compression
            parent[group], group = root, parent[group]
        return root

    def co_located(self, a: BitVector, b: BitVector) -> bool:
        return self.group_root(a.group) == self.group_root(b.group)

    def unify(self, a: BitVector, b: BitVector) -> None:
        """Merge co-location groups (after a relocation copy)."""
        ra, rb = self.group_root(a.group), self.group_root(b.group)
        if ra != rb:
            self._group_parent[rb] = ra

    def join_group(self, vector: BitVector, other: BitVector) -> None:
        """Place ``vector`` into ``other``'s group (results of a TBA are
        written directly into a plane of the operand rows)."""
        vector.group = self.group_root(other.group)
