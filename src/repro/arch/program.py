"""Multi-statement programs: sequenced assignments over the compiler.

Single expressions (:mod:`repro.arch.expr`) cover one-shot predicates,
but the paper's flagship workloads — XNOR+popcount BNN inference, CRC
feedback chains, masked updates — are *dataflows*: sequences of
assignments whose intermediates feed later statements.  A
:class:`Program` is exactly that::

    program = Program([
        ("t",   "a & b"),
        ("u",   "t | c"),
        ("out", "t ^ u"),
    ], outputs=["out"])

Statement semantics are sequential: each statement may reference table
columns and any previously assigned name; re-assigning a name
(*shadowing*) rebinds it for subsequent statements only — earlier
readers keep the value they read (the compiler converts the program to
SSA form while lowering, so the PR-2 class of aliased-operand
corruption cannot occur by construction).

Compilation (:func:`compile_program`) produces a
:class:`CompiledProgram` with two synchronized execution paths:

* **reference replay** — every statement compiles to its own
  :class:`~repro.arch.expr.CompiledQuery`; :meth:`CompiledProgram.run`
  executes them in order on a :class:`~repro.arch.engine.BulkEngine`,
  binding intermediates as columns, freeing each binding at its last
  use (liveness), and attributing a
  :class:`~repro.arch.commands.Stats` delta per statement.  This is
  the ground truth, and the path the analytic cost probe
  (:func:`repro.arch.primitives.probe_program_events`) replays
  op-for-op.
* **vector bytecode** — all statements lower through **one**
  hash-consed AIG (assigned names resolve to their sub-graphs, so
  identical sub-expressions are shared *across* statements), then
  :meth:`CompiledProgram.vector_program` emits a single
  multi-output :class:`~repro.arch.expr.VectorProgram` whose registers
  are recycled at last use (the live-set peak bounds scratch
  matrices, not the statement count).  Statements that do not reach an
  output are never executed on this path — attribution still models
  the full reference replay, mirroring how the batch node cache is a
  host-simulation optimization only.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Mapping

from repro.arch.bank import BitVector
from repro.arch.engine import BulkEngine
from repro.arch.expr import (
    Col,
    CompiledQuery,
    Expr,
    VectorProgram,
    _Aig,
    _as_expr,
    canonical_key,
)
from repro.errors import QueryError

__all__ = [
    "Program", "ProgramBuilder", "CompiledProgram", "compile_program",
    "parse_program",
]

_NAME = re.compile(r"[A-Za-z_]\w*")


class Program:
    """A sequence of named assignments with declared outputs.

    Parameters
    ----------
    statements:
        Iterable of ``(name, expr)`` pairs; ``expr`` may be an
        :class:`~repro.arch.expr.Expr` or a query string.  Statements
        execute in order; a name may be re-assigned (shadowing).
    outputs:
        Names whose *final* bindings are the program results (default:
        the last statement's name).  Each must be assigned by some
        statement.
    """

    def __init__(self, statements: Iterable[tuple[str, "Expr | str"]],
                 outputs: Iterable[str] | None = None) -> None:
        self.statements: tuple[tuple[str, Expr], ...] = tuple(
            (self._check_name(name), _as_expr(expr))
            for name, expr in statements)
        if not self.statements:
            raise QueryError("program needs at least one statement")
        assigned = {name for name, _ in self.statements}
        if outputs is None:
            outputs = (self.statements[-1][0],)
        self.outputs: tuple[str, ...] = tuple(outputs)
        if not self.outputs:
            raise QueryError("program needs at least one output")
        if len(set(self.outputs)) != len(self.outputs):
            raise QueryError("duplicate program output names")
        unassigned = [name for name in self.outputs
                      if name not in assigned]
        if unassigned:
            raise QueryError(
                f"output(s) never assigned: {unassigned}")
        # External columns: names read before (ever being) assigned,
        # in first-appearance order.
        cols: dict[str, None] = {}
        seen_assigned: set[str] = set()
        for name, expr in self.statements:
            for col in expr.cols():
                if col not in seen_assigned:
                    cols.setdefault(col)
            seen_assigned.add(name)
        self._cols = tuple(cols)

    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not _NAME.fullmatch(name):
            raise QueryError(f"invalid statement name {name!r}")
        return name

    def cols(self) -> tuple[str, ...]:
        """External column names (read before any assignment)."""
        return self._cols

    def __len__(self) -> int:
        return len(self.statements)

    def __str__(self) -> str:
        body = "; ".join(f"{name} = {expr}"
                         for name, expr in self.statements)
        return f"{body} -> [{', '.join(self.outputs)}]"

    def __repr__(self) -> str:
        return f"Program({len(self.statements)} statements, " \
               f"outputs={list(self.outputs)})"


def parse_program(text: str,
                  outputs: Iterable[str] | None = None) -> Program:
    """Parse ``name = expr`` lines (newline/``;`` separated).

    Blank lines and ``#`` comments are skipped.  ``outputs`` defaults
    to the last assignment.
    """
    statements: list[tuple[str, str]] = []
    for raw in re.split(r"[;\n]", text):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise QueryError(f"expected 'name = expr', got {line!r}")
        name, expr = line.split("=", 1)
        statements.append((name.strip(), expr.strip()))
    return Program(statements, outputs)


class ProgramBuilder:
    """Incremental program construction with fresh-name generation.

    Workload kernels (adder trees, feedback chains) emit statements as
    they go and track live values as expressions; ``let`` appends a
    statement and hands back a :class:`Col` reference to it.
    """

    def __init__(self) -> None:
        self._statements: list[tuple[str, Expr]] = []
        self._counter = 0

    @property
    def statements(self) -> list[tuple[str, Expr]]:
        return list(self._statements)

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def let(self, name: str, expr: "Expr | str") -> Col:
        """Append ``name = expr``; returns ``Col(name)`` for chaining."""
        self._statements.append((Program._check_name(name),
                                 _as_expr(expr)))
        return Col(name)

    def emit(self, prefix: str, expr: "Expr | str") -> Col:
        """``let`` under a generated unique name."""
        return self.let(self.fresh(prefix), expr)

    def build(self, outputs: Iterable[str] | None = None) -> Program:
        return Program(self._statements, outputs)


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
class CompiledProgram:
    """An optimized, two-backend executable program plan."""

    def __init__(self, program: Program, inverting: bool) -> None:
        self.program = program
        self.inverting = bool(inverting)
        # Per-statement engine plans (identical statements share one).
        by_key: dict[str, CompiledQuery] = {}
        self.stmt_plans: list[tuple[str, CompiledQuery]] = []
        for name, expr in program.statements:
            key = canonical_key(expr)
            plan = by_key.get(key)
            if plan is None:
                plan = CompiledQuery(expr, self.inverting)
                by_key[key] = plan
            self.stmt_plans.append((name, plan))
        #: per-row native primitives of the compiled / naive replays
        self.primitives = sum(p.primitives for _, p in self.stmt_plans)
        self.naive_primitives = sum(p.naive_primitives
                                    for _, p in self.stmt_plans)
        # External columns actually bound by the replay (per-statement
        # optimization may fold some of the program's raw columns away).
        assigned: set[str] = set()
        needed: dict[str, None] = {}
        for name, plan in self.stmt_plans:
            for col in plan.cols:
                if col not in assigned:
                    needed.setdefault(col)
            assigned.add(name)
        self.cols = tuple(needed)
        # Whole-program AIG (vector path + canonical identity):
        # assigned names resolve to their sub-graphs via the statement
        # environment, so hash-consing shares identical sub-expressions
        # across statements.
        self._aig = _Aig()
        env: dict[str, int] = {}
        for name, expr in program.statements:
            env[name] = self._aig.lower(expr, env)
        self._out_refs: dict[str, int] = {
            name: env[name] for name in program.outputs}
        self.key = "program:" + ";".join(
            f"{name}={self._aig.ref_key(ref)}"
            for name, ref in self._out_refs.items())
        self._liveness()
        self._vector_program: VectorProgram | None = None
        self._vector_program_fused: VectorProgram | None = None
        self._cost_events: dict[tuple, tuple] = {}
        #: (spec, flags, n_rows, tba_offset) ->
        #: (per-stmt Stats, final offset)
        #: — the plan_stats expansion for one shard state, reused across
        #: executions (cached entries are read-only; accumulate via
        #: Stats.iadd/iadd_scaled, never mutate them)
        self._plan_stats_memo: dict[tuple, tuple] = {}

    # -- liveness ------------------------------------------------------
    def _liveness(self) -> None:
        """Death point of every binding version for the replay path.

        A *binding* is ``(name, statement index of assignment)``.  It
        dies after its last reader statement — or immediately if never
        read — unless it is the final binding of an output name (those
        are handed to the caller).  The replay frees bindings at their
        death point, so the engine footprint tracks the live set, not
        the statement count.
        """
        current: dict[str, int] = {}
        last_read: dict[tuple[str, int], int] = {}
        for index, (name, plan) in enumerate(self.stmt_plans):
            for col in set(plan.cols):
                if col in current:
                    last_read[(col, current[col])] = index
            current[name] = index
        outputs = set(self.program.outputs)
        death: list[list[tuple[str, int]]] = \
            [[] for _ in self.stmt_plans]
        for index, (name, _) in enumerate(self.stmt_plans):
            if current[name] == index and name in outputs:
                continue  # final output binding: survives the run
            death[last_read.get((name, index), index)].append(
                (name, index))
        self._death = [tuple(entries) for entries in death]
        self._final_binding = current

    # -- reference replay ----------------------------------------------
    def replay(self, engine: BulkEngine,
               columns: Mapping[str, BitVector], *,
               n_bits: int | None = None,
               snapshot=None, delta=None,
               ) -> tuple[dict[str, BitVector], list]:
        """Execute statement-by-statement on an engine.

        Returns ``(outputs, per_statement)``: fresh owned result
        vectors per output name (caller frees), plus one
        ``delta(snapshot())`` capture per statement when the hooks are
        given (``engine.stats.copy``/``engine.stats.minus`` for Stats
        deltas; the cost probe captures event tallies instead).

        The exact operation sequence here — statement order, binding,
        frees at the liveness death points — is what
        :func:`repro.arch.primitives.probe_program_events` replays on
        a one-row probe engine, so the closed-form coster and a shard
        replay can never drift.
        """
        missing = [c for c in self.cols if c not in columns]
        if missing:
            raise QueryError(f"unbound column(s): {missing}")
        env: dict[str, BitVector] = dict(columns)
        live: dict[tuple[str, int], BitVector] = {}
        per_statement: list = []
        for index, (name, plan) in enumerate(self.stmt_plans):
            snap = snapshot() if snapshot is not None else None
            out = plan.run(engine, env, name, n_bits=n_bits)
            if snapshot is not None:
                per_statement.append(delta(snap))
            env[name] = out
            live[(name, index)] = out
            for binding in self._death[index]:
                engine.free(live.pop(binding))
        outputs = {name: live[(name, self._final_binding[name])]
                   for name in self.program.outputs}
        return outputs, per_statement

    def run(self, engine: BulkEngine,
            columns: Mapping[str, BitVector], *,
            n_bits: int | None = None,
            ) -> tuple[dict[str, BitVector], list]:
        """Reference execution with per-statement Stats attribution.

        Returns ``(outputs, stats)`` where ``outputs`` maps each output
        name to a fresh owned vector and ``stats`` holds one
        :class:`~repro.arch.commands.Stats` delta per statement.
        """
        return self.replay(
            engine, columns, n_bits=n_bits,
            snapshot=engine.stats.copy,
            delta=lambda before: engine.stats.minus(before))

    # -- analytic cost -------------------------------------------------
    def cost_events(self, flags: tuple[bool, ...] | None = None,
                    ) -> tuple:
        """Per-statement per-row charge events (probed once per state).

        Returns ``(events, final_flags)``: one
        :class:`~repro.arch.primitives.PlanEvents` per statement plus
        the complement encodings the bound table columns end in.
        ``flags`` aligns with :attr:`cols` (default all-plain);
        results are memoized per initial state.
        """
        if flags is None:
            flags = (False,) * len(self.cols)
        cached = self._cost_events.get(flags)
        if cached is None:
            from repro.arch.primitives import probe_program_events
            cached = probe_program_events(self, flags)
            self._cost_events[flags] = cached
        return cached

    # -- vector lowering -----------------------------------------------
    def vector_program(self, *, fused: bool = False) -> VectorProgram:
        """Multi-output register-machine bytecode (lowered once).

        ``fused=True`` returns the peephole-fused form (see
        :meth:`VectorProgram.fuse`): same bits, fewer kernels and
        fewer scratch matrices.
        """
        if self._vector_program is None:
            self._vector_program = _lower_program_vector(self)
        if not fused:
            return self._vector_program
        if self._vector_program_fused is None:
            self._vector_program_fused = self._vector_program.fuse()
        return self._vector_program_fused

    def vector_payload(self, *, fused: bool = False
                       ) -> tuple[str, tuple]:
        """``(plan id, picklable bytecode spec)`` for shard workers.

        The id keys worker-side program caches (one entry per plan and
        fusion mode); the spec rebuilds the exact bytecode via
        :meth:`VectorProgram.from_spec` inside the worker process —
        plan compilation itself never leaves the coordinator.
        """
        return vector_payload(self, fused=fused)


def vector_payload(plan, *, fused: bool = False) -> tuple[str, tuple]:
    """``(plan id, picklable bytecode spec)`` for any compiled plan.

    Works for :class:`CompiledProgram` and
    :class:`~repro.arch.expr.CompiledQuery` alike — both expose a
    canonical ``key`` and a ``vector_program(fused=)`` lowering.
    """
    program = plan.vector_program(fused=fused)
    return f"{plan.key}|f{int(bool(fused))}", program.spec()


def compile_program(program: Program, *,
                    inverting: bool = True) -> CompiledProgram:
    """Compile a program for a native-primitive polarity."""
    return CompiledProgram(program, inverting)


# ----------------------------------------------------------------------
# multi-root vector lowering with register recycling
# ----------------------------------------------------------------------
def _reachable_multi(aig: _Aig, roots: list[int]) -> list[int]:
    """Node indices reaching any root, children before parents."""
    order: list[int] = []
    seen: set[int] = set()
    stack: list[tuple[int, bool]] = [(idx, False) for idx in roots]
    while stack:
        idx, expanded = stack.pop()
        if expanded:
            order.append(idx)
            continue
        if idx in seen:
            continue
        seen.add(idx)
        stack.append((idx, True))
        for ref in aig.nodes[idx][1:]:
            if isinstance(ref, int):
                stack.append((ref >> 1, False))
    return order


def _lower_program_vector(cprog: CompiledProgram) -> VectorProgram:
    """Lower the program AIG to one multi-output VectorProgram.

    Only nodes reaching an output are scheduled (dead statements cost
    no host work); registers are recycled the moment their node's last
    consumer has run, so the scratch-matrix footprint is the live-set
    peak, not the node count.
    """
    aig = cprog._aig
    out_refs = cprog._out_refs
    order = _reachable_multi(
        aig, list(dict.fromkeys(ref >> 1
                                for ref in out_refs.values())))
    schedule = [idx for idx in order
                if aig.nodes[idx][0] in ("and", "xor", "maj")]

    uses: dict[int, int] = {}
    for idx in schedule:
        for ref in aig.nodes[idx][1:]:
            uses[ref >> 1] = uses.get(ref >> 1, 0) + 1
    for ref in out_refs.values():
        # One retention/consumption per output reference: positive op
        # outputs are never consumed (their register survives), the
        # materialization steps below consume the rest.
        uses[ref >> 1] = uses.get(ref >> 1, 0) + 1

    free_pool: list[int] = []
    n_regs = 0

    def new_reg() -> int:
        nonlocal n_regs
        if free_pool:
            return free_pool.pop()
        n_regs += 1
        return n_regs - 1

    node_reg: dict[int, int] = {}
    remaining = dict(uses)

    def operand(ref_idx: int):
        node = aig.nodes[ref_idx]
        if node[0] == "col":
            return ("col", node[1])
        return ("reg", node_reg[ref_idx])

    def consume(ref_idx: int, free_regs: list[int]) -> None:
        remaining[ref_idx] -= 1
        if remaining[ref_idx] == 0 and ref_idx in node_reg:
            reg = node_reg[ref_idx]
            free_regs.append(reg)
            free_pool.append(reg)

    steps: list[tuple] = []
    for idx in schedule:
        node = aig.nodes[idx]
        kind = node[0]
        dst = new_reg()
        node_reg[idx] = dst
        micro: list[tuple] = []
        free_regs: list[int] = []
        step_temps: list[int] = []
        if kind == "and":
            _, r1, r2 = node
            a, b = operand(r1 >> 1), operand(r2 >> 1)
            n1, n2 = r1 & 1, r2 & 1
            if not n1 and not n2:
                micro.append(("and", dst, a, b))
            elif n1 and n2:
                micro.append(("nor", dst, a, b))
            elif n1:
                micro.append(("andn", dst, b, a))
            else:
                micro.append(("andn", dst, a, b))
            consume(r1 >> 1, free_regs)
            consume(r2 >> 1, free_regs)
        elif kind == "xor":
            _, r1, r2 = node  # canonically positive references
            micro.append(("xor", dst, operand(r1 >> 1),
                          operand(r2 >> 1)))
            consume(r1 >> 1, free_regs)
            consume(r2 >> 1, free_regs)
        else:  # maj: normalized to at most one negated operand
            refs = node[1:]
            specs = []
            for ref in refs:
                if ref & 1:
                    tmp = new_reg()
                    micro.append(("not", tmp, operand(ref >> 1)))
                    specs.append(("reg", tmp))
                    free_regs.append(tmp)
                    step_temps.append(tmp)
                else:
                    specs.append(operand(ref >> 1))
            micro.append(("maj", dst, *specs))
            for ref in refs:
                consume(ref >> 1, free_regs)
        # Step-local temporaries recycle only after the step is fully
        # emitted (they must not collide with this step's registers).
        free_pool.extend(step_temps)
        steps.append((aig.keys[idx], dst, tuple(micro),
                      tuple(free_regs)))

    # Output materialization: negated edges, bare columns and constants
    # each need an explicit owned register; positive op-node outputs
    # reuse the node's (retained) register.
    out_regs: dict[str, int] = {}
    for name, root in out_refs.items():
        root_idx = root >> 1
        kind = aig.nodes[root_idx][0]
        if kind == "true":
            reg = new_reg()
            steps.append((aig.ref_key(root), reg,
                          (("const", reg, 0 if root & 1 else 1),), ()))
        elif kind == "col":
            reg = new_reg()
            op = "not" if root & 1 else "copy"
            steps.append((aig.ref_key(root), reg,
                          ((op, reg, operand(root_idx)),), ()))
        elif root & 1:
            reg = new_reg()
            free_regs = []
            consume(root_idx, free_regs)
            steps.append((aig.ref_key(root), reg,
                          (("not", reg, ("reg", node_reg[root_idx])),),
                          tuple(free_regs)))
        else:
            reg = node_reg[root_idx]
        out_regs[name] = reg
    return VectorProgram(steps, n_regs, None, out_regs)
