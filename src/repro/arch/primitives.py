"""Technology-specific engines: DRAM/Ambit AAP and 2T-nC FeRAM ACP.

Cost model (DESIGN.md §5, ablated in ``benchmarks/bench_policy_ablation``):

**DRAM (Ambit semantics).**  A logic primitive is an AAP — ACTIVATE(TRA)
+ ACTIVATE(RowClone to destination) + PRECHARGE, i.e. 45.52 nJ / 3 cycles
at the paper's constants.  Because TRA is destructive and only operates
on designated compute rows, operands must be staged with RowClone copies;
the ``staging_policy`` selects how many are charged:

* ``paper``  — none (the paper's literal "simulated using an AAP
  primitive");
* ``staged`` — one amortized staging AAP per logic op (default; yields
  the paper's ~2× cycle gap);
* ``ambit``  — the faithful 4-AAP AND/OR sequence (3 operand/control
  copies + compute) and 2-AAP DCC NOT.

Background refresh (64 ms, 8 GB) is charged at finalize time.

**2T-nC FeRAM (this paper).**  A logic primitive is an ACP — ACTIVATE
(TBA, quasi-nondestructive MINORITY sense) + COPY (tri-state buffer row
drive into the destination plane; RowClone is inapplicable because read
and write paths are separate) + PRECHARGE = 33.52 nJ / 3 cycles.  Logic
executes *in place*: no staging.  Two honest extras are charged:

* control-plane rewrites — the constant plane feeding NAND/NOR is
  re-programmed every ``control_rewrite_period`` TBA reads, the period
  the device model's accumulative-disturb analysis supports;
* relocation ACPs — when two operands do not share cell rows (tracked
  with co-location groups), one row-parallel ACP moves an operand into a
  partner plane.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.bank import BitVector
from repro.arch.commands import Command, CommandType, Stats
from repro.arch.engine import BulkEngine
from repro.arch.spec import DRAM_8GB, FERAM_2TNC_8GB, MemorySpec
from repro.errors import ArchitectureError

__all__ = [
    "DramAmbitEngine", "FeramAcpEngine", "make_engine", "default_spec",
    "PlanEvents", "probe_plan_events", "probe_program_events",
    "plan_stats",
]


class DramAmbitEngine(BulkEngine):
    """Ambit-style in-DRAM bulk-bitwise execution."""

    def __init__(self, spec: MemorySpec = DRAM_8GB, *,
                 functional: bool = True) -> None:
        if spec.technology != "dram":
            raise ArchitectureError(
                f"DramAmbitEngine requires a DRAM spec, got {spec.name!r}")
        super().__init__(spec, functional=functional)

    def _native_inverting(self) -> bool:
        return False  # TRA senses MAJORITY

    def _aap(self, n_rows: int, *, tag: str) -> None:
        spec = self.spec
        self.stats.record(spec, Command(CommandType.ACTIVATE_TRA,
                                        repeat=n_rows, tag=tag))
        self.stats.record(spec, Command(CommandType.COPY, repeat=n_rows,
                                        tag=tag))
        self.stats.record(spec, Command(CommandType.PRECHARGE,
                                        repeat=n_rows, tag=tag))

    def _charge_logic(self, n_rows: int) -> None:
        # Policy expansion comes from the spec's costed-plan table so
        # the replay path and the closed-form coster cannot drift.
        staging = self.spec.staging_aaps_per_logic
        for _ in range(staging):  # operand copies (+ control-row init)
            self._aap(n_rows, tag="staging")
        self.stats.staging_aaps += staging * n_rows
        self._aap(n_rows, tag="compute")

    def _charge_not(self, n_rows: int) -> None:
        # Dual-contact-cell NOT: copy into the DCC, read the negated
        # port back out.  The paper-policy counts the single AAP its
        # text implies; the others count the faithful two.
        for _ in range(self.spec.aaps_per_not):
            self._aap(n_rows, tag="not")

    def _charge_copy(self, n_rows: int) -> None:
        self._aap(n_rows, tag="copy")

    def _charge_constant(self, n_rows: int) -> None:
        # Ambit initializes rows by RowClone from its preset 0/1 control
        # rows: one AAP per row.
        self._aap(n_rows, tag="const")


class FeramAcpEngine(BulkEngine):
    """2T-nC FeRAM in-place bulk-bitwise execution (the paper's design)."""

    def __init__(self, spec: MemorySpec = FERAM_2TNC_8GB, *,
                 functional: bool = True) -> None:
        if spec.technology != "feram-2tnc":
            raise ArchitectureError(
                f"FeramAcpEngine requires a 2T-nC FeRAM spec, got "
                f"{spec.name!r}")
        super().__init__(spec, functional=functional)
        self._tba_since_control_rewrite = 0

    def _native_inverting(self) -> bool:
        return True  # TBA + QNRO senses MINORITY

    def _acp(self, n_rows: int, *, tag: str) -> None:
        spec = self.spec
        self.stats.record(spec, Command(CommandType.ACTIVATE_TBA,
                                        repeat=n_rows, tag=tag))
        self.stats.record(spec, Command(CommandType.COPY, repeat=n_rows,
                                        tag=tag))
        self.stats.record(spec, Command(CommandType.PRECHARGE,
                                        repeat=n_rows, tag=tag))

    def _before_logic(self, operands: list[BitVector],
                      result: BitVector) -> None:
        """Co-locate operands into one cell group; results are written by
        the COPY phase directly into a plane of the group's rows."""
        anchor = operands[0]
        for other in operands[1:]:
            if not self.allocator.co_located(anchor, other):
                self._acp(other.n_rows, tag="relocate")
                self.stats.relocation_acps += other.n_rows
                self.allocator.unify(anchor, other)
        self.allocator.join_group(result, anchor)

    def _charge_logic(self, n_rows: int) -> None:
        # Control-plane upkeep: quasi-nondestructive reads still disturb
        # the stored control bits; rewrite every control_rewrite_period
        # TBA activations (device-model analysis: ~2× margin).
        self._tba_since_control_rewrite += n_rows
        period = self.spec.control_rewrite_period
        rewrites, self._tba_since_control_rewrite = divmod(
            self._tba_since_control_rewrite, period)
        if rewrites:
            self.stats.record(self.spec, Command(
                CommandType.ROW_WRITE, repeat=int(rewrites), tag="control"))
            self.stats.control_rewrites += int(rewrites)
        self._acp(n_rows, tag="compute")

    def _charge_not(self, n_rows: int) -> None:
        # QNRO read is inverting: one ACP reads the row through the SA
        # (already complemented) and copies it out.
        self._acp(n_rows, tag="not")

    def _charge_copy(self, n_rows: int) -> None:
        self._acp(n_rows, tag="copy")


def make_engine(technology: str, *, functional: bool = True,
                spec: MemorySpec | None = None) -> BulkEngine:
    """Factory: ``"dram"`` or ``"feram-2tnc"`` (paper-default specs)."""
    if technology == "dram":
        return DramAmbitEngine(spec or DRAM_8GB, functional=functional)
    if technology == "feram-2tnc":
        return FeramAcpEngine(spec or FERAM_2TNC_8GB, functional=functional)
    raise ArchitectureError(f"unknown technology {technology!r}")


def default_spec(technology: str) -> MemorySpec:
    """The paper-default spec of a technology name."""
    if technology == "dram":
        return DRAM_8GB
    if technology == "feram-2tnc":
        return FERAM_2TNC_8GB
    raise ArchitectureError(f"unknown technology {technology!r}")


# ----------------------------------------------------------------------
# costed plans: abstract charge events + closed-form Stats expansion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanEvents:
    """Per-row engine charge events a compiled plan fires on one shard.

    Every vector in a query spans the same number of rows, so each
    ``_charge_*`` call (and FeRAM relocation) scales linearly with the
    shard's row count — the per-row event vector fully determines the
    replayed :class:`~repro.arch.commands.Stats` delta.  Probed once
    per plan on a single-row counting engine whose columns are
    co-located in one cell group, exactly like service shards lay
    columns out.
    """

    logic: int = 0        #: _charge_logic calls (native primitives)
    nots: int = 0         #: _charge_not calls (materialized NOTs)
    copies: int = 0       #: _charge_copy calls (row copies)
    constants: int = 0    #: _charge_constant calls (0/1 row inits)
    relocations: int = 0  #: FeRAM co-location relocation ACPs


class _ProbeMixin:
    """Overrides the charge hooks to tally events instead of stats."""

    def _init_events(self) -> None:
        self._events = {"logic": 0, "nots": 0, "copies": 0,
                        "constants": 0, "relocations": 0}

    def events(self) -> PlanEvents:
        return PlanEvents(**self._events)

    def _charge_logic(self, n_rows: int) -> None:
        self._events["logic"] += n_rows

    def _charge_not(self, n_rows: int) -> None:
        self._events["nots"] += n_rows

    def _charge_copy(self, n_rows: int) -> None:
        self._events["copies"] += n_rows

    def _charge_constant(self, n_rows: int) -> None:
        self._events["constants"] += n_rows


class _FeramEventProbe(_ProbeMixin, FeramAcpEngine):
    def __init__(self) -> None:
        super().__init__(functional=False)
        self._init_events()

    def _before_logic(self, operands: list[BitVector],
                      result: BitVector) -> None:
        # Mirror the real engine's co-location bookkeeping, but tally
        # the relocation instead of charging it.
        anchor = operands[0]
        for other in operands[1:]:
            if not self.allocator.co_located(anchor, other):
                self._events["relocations"] += other.n_rows
                self.allocator.unify(anchor, other)
        self.allocator.join_group(result, anchor)


class _DramEventProbe(_ProbeMixin, DramAmbitEngine):
    def __init__(self) -> None:
        super().__init__(functional=False)
        self._init_events()


def _probe_layout(inverting: bool, cols: tuple[str, ...],
                  flags: tuple[bool, ...] | None):
    """A 1-row probe engine with columns laid out like a service shard.

    All columns are co-located in one cell group (so FeRAM relocation
    counts match shard execution) with their initial complement
    encodings taken from ``flags`` (default all-plain).  Shared by the
    single-plan and whole-program probes so the two cost paths cannot
    drift.
    """
    engine = _FeramEventProbe() if inverting else _DramEventProbe()
    if flags is None:
        flags = (False,) * len(cols)
    columns: dict[str, BitVector] = {}
    first: BitVector | None = None
    for name, flag in zip(cols, flags):
        vec = engine.allocate(64, name, group_with=first)
        vec.complemented = bool(flag)
        first = first or vec
        columns[name] = vec
    return engine, columns


def _final_flags(columns: dict[str, BitVector],
                 cols: tuple[str, ...]) -> tuple[bool, ...]:
    return tuple(columns[name].complemented for name in cols)


def probe_plan_events(plan, flags: tuple[bool, ...] | None = None,
                      ) -> tuple[PlanEvents, tuple[bool, ...]]:
    """Replay a plan once on a 1-row probe engine and tally its events.

    The probe lays columns out like a service shard (all co-located in
    one cell group), so FeRAM relocation counts match shard execution.
    ``flags`` sets the columns' initial complement encodings (replay
    cost is state-dependent: parity steering re-encodes operands
    persistently); the returned tuple pairs the events with the flags
    the columns end in, letting callers track the evolution exactly.
    """
    engine, columns = _probe_layout(plan.inverting, plan.cols, flags)
    out = plan.run(engine, columns, n_bits=64)
    engine.free(out)
    return engine.events(), _final_flags(columns, plan.cols)


def probe_program_events(cprog, flags: tuple[bool, ...] | None = None,
                         ) -> tuple[tuple[PlanEvents, ...],
                                    tuple[bool, ...]]:
    """Replay a compiled program once on a 1-row probe engine.

    Statement-by-statement analog of :func:`probe_plan_events`: the
    probe lays the program's table columns out like a service shard
    (co-located in one cell group, initial complement encodings from
    ``flags``) and replays the *reference* execution path — the same
    :meth:`~repro.arch.program.CompiledProgram.replay` loop a shard
    runs, including intermediate bindings and liveness frees — tallying
    one :class:`PlanEvents` per statement.  Returns the per-statement
    events plus the final complement flags of the table columns.
    """
    engine, columns = _probe_layout(cprog.inverting, cprog.cols, flags)

    def snapshot() -> dict:
        return dict(engine._events)

    def delta(before: dict) -> PlanEvents:
        return PlanEvents(**{key: engine._events[key] - before[key]
                             for key in engine._events})

    outputs, per_statement = cprog.replay(
        engine, columns, n_bits=64, snapshot=snapshot, delta=delta)
    engine.free(*outputs.values())
    return tuple(per_statement), _final_flags(columns, cprog.cols)


def plan_stats(spec: MemorySpec, events: PlanEvents, n_rows: int, *,
               tba_offset: int = 0) -> tuple[Stats, int]:
    """Closed-form Stats delta of a plan over ``n_rows`` rows.

    Expands the plan's abstract charge events through the spec's cost
    tables exactly as an engine replay would — same command counts,
    cycles and category totals, without issuing a single per-op charge
    call.  ``tba_offset`` is the FeRAM shard's running
    TBA-since-control-rewrite counter; the new counter value is
    returned alongside the delta (control rewrites depend only on the
    *total* TBA count crossing period boundaries, so the closed form
    is exact for any interleaving).
    """
    stats = Stats()
    new_offset = tba_offset
    if spec.technology == "feram-2tnc":
        acps = (events.logic + events.nots + events.copies
                + events.relocations) * n_rows
        if acps:
            stats.record(spec, Command(CommandType.ACTIVATE_TBA,
                                       repeat=acps))
            stats.record(spec, Command(CommandType.COPY, repeat=acps))
            stats.record(spec, Command(CommandType.PRECHARGE,
                                       repeat=acps))
        total_tba = tba_offset + events.logic * n_rows
        rewrites, new_offset = divmod(total_tba,
                                      spec.control_rewrite_period)
        row_writes = rewrites + events.constants * n_rows
        if row_writes:
            stats.record(spec, Command(CommandType.ROW_WRITE,
                                       repeat=row_writes))
        stats.control_rewrites = rewrites
        stats.relocation_acps = events.relocations * n_rows
    else:
        aaps = (events.logic * spec.aaps_per_logic
                + events.nots * spec.aaps_per_not
                + events.copies + events.constants) * n_rows
        if aaps:
            stats.record(spec, Command(CommandType.ACTIVATE_TRA,
                                       repeat=aaps))
            stats.record(spec, Command(CommandType.COPY, repeat=aaps))
            stats.record(spec, Command(CommandType.PRECHARGE,
                                       repeat=aaps))
        stats.staging_aaps = events.logic * spec.staging_aaps_per_logic \
            * n_rows
    return stats, new_offset
