"""Technology-specific engines: DRAM/Ambit AAP and 2T-nC FeRAM ACP.

Cost model (DESIGN.md §5, ablated in ``benchmarks/bench_policy_ablation``):

**DRAM (Ambit semantics).**  A logic primitive is an AAP — ACTIVATE(TRA)
+ ACTIVATE(RowClone to destination) + PRECHARGE, i.e. 45.52 nJ / 3 cycles
at the paper's constants.  Because TRA is destructive and only operates
on designated compute rows, operands must be staged with RowClone copies;
the ``staging_policy`` selects how many are charged:

* ``paper``  — none (the paper's literal "simulated using an AAP
  primitive");
* ``staged`` — one amortized staging AAP per logic op (default; yields
  the paper's ~2× cycle gap);
* ``ambit``  — the faithful 4-AAP AND/OR sequence (3 operand/control
  copies + compute) and 2-AAP DCC NOT.

Background refresh (64 ms, 8 GB) is charged at finalize time.

**2T-nC FeRAM (this paper).**  A logic primitive is an ACP — ACTIVATE
(TBA, quasi-nondestructive MINORITY sense) + COPY (tri-state buffer row
drive into the destination plane; RowClone is inapplicable because read
and write paths are separate) + PRECHARGE = 33.52 nJ / 3 cycles.  Logic
executes *in place*: no staging.  Two honest extras are charged:

* control-plane rewrites — the constant plane feeding NAND/NOR is
  re-programmed every ``control_rewrite_period`` TBA reads, the period
  the device model's accumulative-disturb analysis supports;
* relocation ACPs — when two operands do not share cell rows (tracked
  with co-location groups), one row-parallel ACP moves an operand into a
  partner plane.
"""

from __future__ import annotations

from repro.arch.bank import BitVector
from repro.arch.commands import Command, CommandType
from repro.arch.engine import BulkEngine
from repro.arch.spec import DRAM_8GB, FERAM_2TNC_8GB, MemorySpec, StagingPolicy
from repro.errors import ArchitectureError

__all__ = ["DramAmbitEngine", "FeramAcpEngine", "make_engine"]


class DramAmbitEngine(BulkEngine):
    """Ambit-style in-DRAM bulk-bitwise execution."""

    def __init__(self, spec: MemorySpec = DRAM_8GB, *,
                 functional: bool = True) -> None:
        if spec.technology != "dram":
            raise ArchitectureError(
                f"DramAmbitEngine requires a DRAM spec, got {spec.name!r}")
        super().__init__(spec, functional=functional)

    def _native_inverting(self) -> bool:
        return False  # TRA senses MAJORITY

    def _aap(self, n_rows: int, *, tag: str) -> None:
        spec = self.spec
        self.stats.record(spec, Command(CommandType.ACTIVATE_TRA,
                                        repeat=n_rows, tag=tag))
        self.stats.record(spec, Command(CommandType.COPY, repeat=n_rows,
                                        tag=tag))
        self.stats.record(spec, Command(CommandType.PRECHARGE,
                                        repeat=n_rows, tag=tag))

    def _charge_logic(self, n_rows: int) -> None:
        policy = self.spec.staging_policy
        if policy == StagingPolicy.STAGED:
            self._aap(n_rows, tag="staging")
            self.stats.staging_aaps += n_rows
        elif policy == StagingPolicy.AMBIT:
            for _ in range(3):  # two operand copies + control-row init
                self._aap(n_rows, tag="staging")
            self.stats.staging_aaps += 3 * n_rows
        self._aap(n_rows, tag="compute")

    def _charge_not(self, n_rows: int) -> None:
        # Dual-contact-cell NOT: copy into the DCC, read the negated
        # port back out.  The paper-policy counts the single AAP its
        # text implies; the others count the faithful two.
        if self.spec.staging_policy == StagingPolicy.PAPER:
            self._aap(n_rows, tag="not")
        else:
            self._aap(n_rows, tag="not")
            self._aap(n_rows, tag="not")

    def _charge_copy(self, n_rows: int) -> None:
        self._aap(n_rows, tag="copy")

    def _charge_constant(self, n_rows: int) -> None:
        # Ambit initializes rows by RowClone from its preset 0/1 control
        # rows: one AAP per row.
        self._aap(n_rows, tag="const")


class FeramAcpEngine(BulkEngine):
    """2T-nC FeRAM in-place bulk-bitwise execution (the paper's design)."""

    def __init__(self, spec: MemorySpec = FERAM_2TNC_8GB, *,
                 functional: bool = True) -> None:
        if spec.technology != "feram-2tnc":
            raise ArchitectureError(
                f"FeramAcpEngine requires a 2T-nC FeRAM spec, got "
                f"{spec.name!r}")
        super().__init__(spec, functional=functional)
        self._tba_since_control_rewrite = 0

    def _native_inverting(self) -> bool:
        return True  # TBA + QNRO senses MINORITY

    def _acp(self, n_rows: int, *, tag: str) -> None:
        spec = self.spec
        self.stats.record(spec, Command(CommandType.ACTIVATE_TBA,
                                        repeat=n_rows, tag=tag))
        self.stats.record(spec, Command(CommandType.COPY, repeat=n_rows,
                                        tag=tag))
        self.stats.record(spec, Command(CommandType.PRECHARGE,
                                        repeat=n_rows, tag=tag))

    def _before_logic(self, operands: list[BitVector],
                      result: BitVector) -> None:
        """Co-locate operands into one cell group; results are written by
        the COPY phase directly into a plane of the group's rows."""
        anchor = operands[0]
        for other in operands[1:]:
            if not self.allocator.co_located(anchor, other):
                self._acp(other.n_rows, tag="relocate")
                self.stats.relocation_acps += other.n_rows
                self.allocator.unify(anchor, other)
        self.allocator.join_group(result, anchor)

    def _charge_logic(self, n_rows: int) -> None:
        # Control-plane upkeep: quasi-nondestructive reads still disturb
        # the stored control bits; rewrite every control_rewrite_period
        # TBA activations (device-model analysis: ~2× margin).
        self._tba_since_control_rewrite += n_rows
        period = self.spec.control_rewrite_period
        rewrites, self._tba_since_control_rewrite = divmod(
            self._tba_since_control_rewrite, period)
        if rewrites:
            self.stats.record(self.spec, Command(
                CommandType.ROW_WRITE, repeat=int(rewrites), tag="control"))
            self.stats.control_rewrites += int(rewrites)
        self._acp(n_rows, tag="compute")

    def _charge_not(self, n_rows: int) -> None:
        # QNRO read is inverting: one ACP reads the row through the SA
        # (already complemented) and copies it out.
        self._acp(n_rows, tag="not")

    def _charge_copy(self, n_rows: int) -> None:
        self._acp(n_rows, tag="copy")


def make_engine(technology: str, *, functional: bool = True,
                spec: MemorySpec | None = None) -> BulkEngine:
    """Factory: ``"dram"`` or ``"feram-2tnc"`` (paper-default specs)."""
    if technology == "dram":
        return DramAmbitEngine(spec or DRAM_8GB, functional=functional)
    if technology == "feram-2tnc":
        return FeramAcpEngine(spec or FERAM_2TNC_8GB, functional=functional)
    raise ArchitectureError(f"unknown technology {technology!r}")
