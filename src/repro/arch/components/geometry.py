"""Cell/array geometry: the knobs the design-space explorer sweeps.

This module is the single home of the paper's geometry and area
anchors (§V/§VI/§VII) — ``integration.area`` re-exports them — plus
the :class:`CellGeometry` point the component estimators scale their
energies and footprints against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ArchitectureError

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TECH_F_NM",
    "PLANAR_F2_PER_CAP",
    "VERTICAL_FOOTPRINT_NM",
    "PERIPHERY_OVERHEAD",
    "DRAM_F2_PER_CELL",
    "CellGeometry",
    "reference_geometry",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: feature size of the paper's area comparison (nm)
TECH_F_NM = 28.0
#: planar 2T-nC area scales ~30 F² per capacitor (2T-1C anchor)
PLANAR_F2_PER_CAP = 30.0
#: vertical 2T-nC string footprint (nm per side)
VERTICAL_FOOTPRINT_NM = 130.0
#: peripheral circuitry overhead fraction (§VII, consistent with [15])
PERIPHERY_OVERHEAD = 0.5
#: standard folded-bitline DRAM cell (1T-1C), one bit per cell
DRAM_F2_PER_CELL = 6.0

#: §VI evaluation geometry shared by both technologies
REF_CAPACITY_BYTES = 8 * GIB
REF_ROW_BYTES = 8 * KIB
REF_N_BANKS = 64


@dataclass(frozen=True)
class CellGeometry:
    """One design point: array geometry + cell technology knobs.

    ``stacking`` selects the 2T-nC cell style: ``"vertical"`` (the
    paper's BEOL capacitor string, footprint independent of the plane
    count) or ``"planar"`` (30 F² per capacitor).  DRAM ignores it.
    """

    technology: str               # "dram" | "feram-2tnc"
    capacity_bytes: int = REF_CAPACITY_BYTES
    row_bytes: int = REF_ROW_BYTES
    n_banks: int = REF_N_BANKS
    n_caps: int = 1               # capacitors (planes) per cell
    f_nm: float = TECH_F_NM
    footprint_nm: float = VERTICAL_FOOTPRINT_NM
    stacking: str = "vertical"

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.row_bytes <= 0:
            raise ArchitectureError(
                "capacity and row size must be positive")
        if self.capacity_bytes % self.row_bytes:
            raise ArchitectureError(
                "capacity must be a whole number of rows")
        if self.n_banks < 1 or self.n_caps < 1:
            raise ArchitectureError(
                "need at least one bank and one capacitor")
        if self.f_nm <= 0 or self.footprint_nm <= 0:
            raise ArchitectureError(
                "feature size and footprint must be positive")
        if self.stacking not in ("vertical", "planar"):
            raise ArchitectureError(
                f"unknown stacking {self.stacking!r}")

    # -- derived array shape (mirrors MemorySpec) ----------------------
    @property
    def row_bits(self) -> int:
        return self.row_bytes * 8

    @property
    def n_rows(self) -> int:
        """Physical cell rows (planes share a row)."""
        return self.capacity_bytes // (self.row_bytes * self.n_caps)

    @property
    def rows_per_bank(self) -> int:
        return self.n_rows // self.n_banks

    @property
    def bits_per_cell(self) -> int:
        return self.n_caps

    # -- area model (§V anchors) ---------------------------------------
    def cell_area_nm2(self) -> float:
        """Footprint of one cell-site (nm²), all planes included."""
        if self.technology == "dram":
            return DRAM_F2_PER_CELL * self.f_nm * self.f_nm
        if self.stacking == "vertical":
            # capacitors stack in the BEOL between T_R and T_W,
            # costing no lateral area
            return self.footprint_nm * self.footprint_nm
        return PLANAR_F2_PER_CAP * self.n_caps * self.f_nm * self.f_nm

    def periphery_budget_nm2(self) -> float:
        """Periphery area budget per cell-site the periphery
        components split between themselves (§VII overhead)."""
        return PERIPHERY_OVERHEAD * self.cell_area_nm2()

    # -- sweep constructors --------------------------------------------
    def with_rows_per_bank(self, rows_per_bank: int) -> "CellGeometry":
        """Same point with the bank resized to ``rows_per_bank`` rows
        (capacity follows; the sweep's bank-depth knob)."""
        if rows_per_bank < 1:
            raise ArchitectureError("rows_per_bank must be >= 1")
        capacity = (self.row_bytes * self.n_caps * rows_per_bank
                    * self.n_banks)
        return replace(self, capacity_bytes=capacity)

    def scaled(self, **overrides) -> "CellGeometry":
        return replace(self, **overrides)

    # -- scaling ratios vs the technology reference --------------------
    def ratios(self) -> dict[str, float]:
        """Geometry ratios vs the paper's reference point.

        All exactly 1.0 at the reference, which the bit-exact default
        spec assembly depends on."""
        ref = reference_geometry(self.technology)
        return {
            "row_bits": self.row_bits / ref.row_bits,
            "feature": self.f_nm / ref.f_nm,
            "decode": (math.log2(max(self.rows_per_bank, 2))
                       / math.log2(max(ref.rows_per_bank, 2))),
        }


def reference_geometry(technology: str) -> CellGeometry:
    """The paper's §VI evaluation geometry for one technology."""
    if technology == "dram":
        return CellGeometry(technology="dram", n_caps=1,
                            stacking="planar")
    if technology == "feram-2tnc":
        return CellGeometry(technology="feram-2tnc", n_caps=3,
                            stacking="vertical")
    raise ArchitectureError(f"unknown technology {technology!r}")
