"""Assemble a :class:`~repro.arch.spec.MemorySpec` from components.

The spec's per-row command energies are the **sums of the component
estimators' action energies**, and the paper's default specs
(``DRAM_8GB`` / ``FERAM_2TNC_8GB``) are built this way at import time.
The hard constraint is bit-exactness: the assembled defaults must
reproduce the calibrated constants to the last float bit, so every
golden fixture and differential suite keeps passing unchanged.  The
:func:`exact_partition` helper guarantees it — it splits a calibrated
total by the component shares and then nudges the largest part by the
(sub-ulp) residual until the left-to-right float sum reproduces the
total exactly; at the reference geometry every scaling factor is
exactly 1.0, so the assembled spec's energies are bitwise equal to the
cost-table constants.
"""

from __future__ import annotations

from repro.arch.components.base import (
    ACTIONS,
    Component,
    component_classes,
)
from repro.arch.components.geometry import CellGeometry, reference_geometry
from repro.arch.components.library import technology_costs
from repro.errors import ArchitectureError

__all__ = [
    "exact_partition",
    "build_components",
    "assemble_memory_spec",
    "paper_memory_spec",
    "component_breakdown",
]

#: DRAM refresh interval of the paper's evaluation (§VI)
DRAM_REFRESH_INTERVAL_S = 64e-3


def _chain_sum(values) -> float:
    """Plain left-to-right float sum — THE summation order assembly
    uses everywhere, which :func:`exact_partition` calibrates against."""
    total = 0.0
    for value in values:
        total += value
    return total


def exact_partition(total: float, shares) -> list[float]:
    """Split ``total`` into parts proportional to ``shares`` whose
    left-to-right float sum equals ``total`` **exactly**.

    Shares must be non-negative and sum to 1; the residual (at most a
    few ulps from the share multiplications) is folded into the
    largest part, iterating until the chain sum lands bit-exactly.
    """
    shares = list(shares)
    if not shares or any(share < 0 for share in shares):
        raise ArchitectureError("shares must be non-negative")
    parts = [total * share for share in shares]
    largest = max(range(len(parts)), key=lambda i: parts[i])
    for _ in range(64):
        err = total - _chain_sum(parts)
        if err == 0.0:
            return parts
        parts[largest] += err
    raise ArchitectureError(
        f"exact partition failed to converge for total {total!r}")


def build_components(technology: str,
                     geometry: CellGeometry | None = None,
                     ) -> tuple[Component, ...]:
    """Instantiate a technology's component list at a geometry point.

    Each calibrated action total is exact-partitioned across the
    registered classes at the *reference* geometry, then every part is
    scaled by its class's geometry law — so at the reference the parts
    sum bit-exactly to the calibrated constants, and away from it the
    totals follow the per-component physics.
    """
    geometry = geometry if geometry is not None \
        else reference_geometry(technology)
    if geometry.technology != technology:
        raise ArchitectureError(
            f"geometry is for {geometry.technology!r}, "
            f"not {technology!r}")
    classes = component_classes(technology)
    costs = technology_costs(technology)
    energies: dict[str, list[float]] = {}
    for action in ACTIONS:
        parts = exact_partition(
            costs.action_total(action),
            [cls.energy_share(action) for cls in classes])
        energies[action] = [
            part * cls.energy_scale(action, geometry)
            for part, cls in zip(parts, classes)]
    return tuple(
        cls(read_j=energies["read"][i],
            write_j=energies["write"][i],
            update_j=energies["update"][i],
            area_nm2=cls.area_nm2_for(geometry))
        for i, cls in enumerate(classes))


def assemble_memory_spec(technology: str,
                         geometry: CellGeometry | None = None, *,
                         name: str | None = None,
                         staging_policy: str | None = None,
                         refresh_interval_s: float | None = None,
                         control_rewrite_period: int | None = None):
    """A :class:`~repro.arch.spec.MemorySpec` summed from components.

    ``e_activate``/``e_row_read`` are the component ``read`` energies,
    ``e_copy``/``e_row_write`` the ``write`` energies and
    ``e_precharge`` the ``update`` energies, summed in registry order;
    geometry fields come from the :class:`CellGeometry` point.
    """
    # Imported lazily: spec.py builds its default constants through
    # this module at import time, so a module-level import would be
    # circular whichever side loads first.
    from repro.arch.spec import MemorySpec, StagingPolicy

    geometry = geometry if geometry is not None \
        else reference_geometry(technology)
    components = build_components(technology, geometry)
    e_read = _chain_sum(c.action_energy("read") for c in components)
    e_write = _chain_sum(c.action_energy("write") for c in components)
    e_update = _chain_sum(c.action_energy("update") for c in components)
    if staging_policy is None:
        staging_policy = StagingPolicy.STAGED \
            if technology == "dram" else StagingPolicy.PAPER
    if refresh_interval_s is None and technology == "dram":
        refresh_interval_s = DRAM_REFRESH_INTERVAL_S
    extra = {}
    if control_rewrite_period is not None:
        extra["control_rewrite_period"] = control_rewrite_period
    return MemorySpec(
        name=name or f"{technology}-assembled",
        technology=technology,
        capacity_bytes=geometry.capacity_bytes,
        row_bytes=geometry.row_bytes,
        n_banks=geometry.n_banks,
        n_planes=geometry.n_caps,
        e_activate=e_read,
        e_precharge=e_update,
        e_copy=e_write,
        e_row_write=e_write,
        e_row_read=e_read,
        refresh_interval_s=refresh_interval_s,
        staging_policy=staging_policy,
        components=components,
        **extra,
    )


def paper_memory_spec(technology: str):
    """The paper's §VI default spec, assembled from the registry.

    Bit-exact against the historical hand-written constants — pinned
    by the component test suite and the golden fixtures.
    """
    if technology == "dram":
        return assemble_memory_spec("dram", name="dram-8gb")
    if technology == "feram-2tnc":
        return assemble_memory_spec("feram-2tnc",
                                    name="feram-2tnc-8gb")
    raise ArchitectureError(f"unknown technology {technology!r}")


def component_breakdown(technology: str,
                        geometry: CellGeometry | None = None,
                        ) -> list[dict]:
    """Per-component energy/area table (report + experiment view)."""
    geometry = geometry if geometry is not None \
        else reference_geometry(technology)
    rows = []
    for component in build_components(technology, geometry):
        rows.append({
            "kind": component.kind,
            "label": component.label or component.kind,
            "read_nj": component.action_energy("read") * 1e9,
            "write_nj": component.action_energy("write") * 1e9,
            "update_nj": component.action_energy("update") * 1e9,
            "area_nm2": component.get_area(),
        })
    return rows
