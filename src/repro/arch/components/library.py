"""The component library: per-technology estimators and cost tables.

The calibrated per-row command energies (§VI: ACTIVATE 22.6 nJ DRAM /
16.6 nJ 2T-nC FeRAM, full write/COPY 22.6 / 28 nJ, PRECHARGE 0.32 nJ)
live **here and only here** — ``arch.spec``'s default specs and the
``energy_params`` experiment targets are views over this table.

Each technology's row-command energy decomposes across its component
list with dyadic-rational shares grounded in the bottom-up per-bit
model of :mod:`repro.experiments.energy_params` (wire/driver terms
dominate, then the cell charge, then sense/decode periphery; the QNRO
read moves only the weak-domain tail, so the FeRAM cell-array read
share is small while its *write* share — a full polarization reversal
through two driven rails — is the largest term).  The assembler nudges
the partition so the parts sum **bit-exactly** back to the calibrated
totals.

Geometry scaling laws (relative to the §VI reference, all == 1.0
there):

* drivers / sense amps / interconnect — per-bit structures along the
  row: ∝ row_bits × feature size (wire capacitance per unit length);
* cell array — charge ∝ capacitor area: ∝ row_bits × feature²;
* row decoder — ∝ log₂(rows per bank) × feature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.components.base import Component, register
from repro.errors import ArchitectureError

__all__ = [
    "TechnologyCosts",
    "DRAM_COSTS",
    "FERAM_2TNC_COSTS",
    "technology_costs",
    "SenseAmp",
    "RowDecoder",
    "RowDriver",
    "CellArrayBank",
    "Interconnect",
]


@dataclass(frozen=True)
class TechnologyCosts:
    """Calibrated per-row command energies of one technology (J)."""

    technology: str
    row_read_j: float      #: one ACTIVATE (QNRO read / DRAM ACT)
    row_write_j: float     #: one full row write / COPY drive
    row_update_j: float    #: one PRECHARGE

    def action_total(self, action: str) -> float:
        if action == "read":
            return self.row_read_j
        if action == "write":
            return self.row_write_j
        if action == "update":
            return self.row_update_j
        raise ArchitectureError(f"unknown action {action!r}")


#: the paper's DRAM baseline: Ambit AAP at 22.6 nJ per ACTIVATE; a
#: write is an activate-shaped restore of the full row
DRAM_COSTS = TechnologyCosts(
    technology="dram",
    row_read_j=22.6e-9,
    row_write_j=22.6e-9,
    row_update_j=0.32e-9,
)

#: the paper's 2T-nC FeRAM: QNRO activation at 16.6 nJ (no full
#: polarization reversal), 28 nJ full write through the complementary
#: WBL/WPL rails (derived bottom-up in experiments.energy_params)
FERAM_2TNC_COSTS = TechnologyCosts(
    technology="feram-2tnc",
    row_read_j=16.6e-9,
    row_write_j=28e-9,
    row_update_j=0.32e-9,
)

_COSTS = {
    "dram": DRAM_COSTS,
    "feram-2tnc": FERAM_2TNC_COSTS,
}


def technology_costs(technology: str) -> TechnologyCosts:
    """The calibrated row-command cost table of one technology."""
    try:
        return _COSTS[technology]
    except KeyError:
        raise ArchitectureError(
            f"unknown technology {technology!r}") from None


# ----------------------------------------------------------------------
# generic component kinds (shared scaling laws)
# ----------------------------------------------------------------------
class SenseAmp(Component):
    """Bitline sense-amplifier stripe (one SA per bitline pair)."""

    kind = "sense_amp"
    label = "sense amp"

    @classmethod
    def energy_scale(cls, action, geometry):
        ratios = geometry.ratios()
        return ratios["row_bits"] * ratios["feature"]


class RowDecoder(Component):
    """Row address decoder (per-bank, ∝ address depth)."""

    kind = "row_decoder"
    label = "row decoder"

    @classmethod
    def energy_scale(cls, action, geometry):
        ratios = geometry.ratios()
        return ratios["decode"] * ratios["feature"]


class RowDriver(Component):
    """Wordline (and FeRAM plateline) driver: the row-spanning wires."""

    kind = "row_driver"
    label = "wordline driver"

    @classmethod
    def energy_scale(cls, action, geometry):
        ratios = geometry.ratios()
        return ratios["row_bits"] * ratios["feature"]


class CellArrayBank(Component):
    """The cell array itself: stored-charge motion per command."""

    kind = "cell_array"
    label = "cell array bank"

    @classmethod
    def energy_scale(cls, action, geometry):
        ratios = geometry.ratios()
        return ratios["row_bits"] * ratios["feature"] ** 2

    @classmethod
    def area_nm2_for(cls, geometry):
        return geometry.cell_area_nm2()


class Interconnect(Component):
    """Bank-internal routing: RSL/buffer nodes and column select."""

    kind = "interconnect"
    label = "interconnect"

    @classmethod
    def energy_scale(cls, action, geometry):
        ratios = geometry.ratios()
        return ratios["row_bits"] * ratios["feature"]


# ----------------------------------------------------------------------
# DRAM (Ambit baseline)
# ----------------------------------------------------------------------
# Activate = destructive read + restore: the bitline swing (driver)
# dominates, the cell restores a full stored charge, the SA latches
# every bit.  Writes are activate-shaped.  Periphery area splits the
# §VII overhead budget: SA stripe half, decoder a quarter, drivers and
# routing an eighth each.

@register
class DramRowDriver(RowDriver):
    technology = "dram"
    ENERGY_SHARES = {"read": 1 / 2, "write": 1 / 2, "update": 1 / 4}
    AREA_SHARE = 1 / 8


@register
class DramCellArray(CellArrayBank):
    technology = "dram"
    ENERGY_SHARES = {"read": 1 / 4, "write": 1 / 4, "update": 0.0}


@register
class DramSenseAmp(SenseAmp):
    technology = "dram"
    ENERGY_SHARES = {"read": 1 / 8, "write": 1 / 8, "update": 1 / 2}
    AREA_SHARE = 1 / 2


@register
class DramRowDecoder(RowDecoder):
    technology = "dram"
    ENERGY_SHARES = {"read": 1 / 16, "write": 1 / 16, "update": 0.0}
    AREA_SHARE = 1 / 4


@register
class DramInterconnect(Interconnect):
    technology = "dram"
    ENERGY_SHARES = {"read": 1 / 16, "write": 1 / 16, "update": 1 / 4}
    AREA_SHARE = 1 / 8


# ----------------------------------------------------------------------
# 2T-nC FeRAM (the paper's design)
# ----------------------------------------------------------------------
# QNRO read: the WBL/driver term dominates and the cell moves only the
# weak-domain tail (small array share); the 3-way minority sense costs
# a larger SA share than DRAM.  Full write: the FE capacitors reverse
# polarization through TWO driven rails — the cell array carries half
# the 28 nJ, the complementary WBL/WPL drivers most of the rest.

@register
class FeramRowDriver(RowDriver):
    technology = "feram-2tnc"
    label = "wordline/plateline driver"
    ENERGY_SHARES = {"read": 1 / 2, "write": 7 / 16, "update": 1 / 4}
    AREA_SHARE = 1 / 8


@register
class FeramCellArray(CellArrayBank):
    technology = "feram-2tnc"
    label = "2T-nC cell array bank"
    ENERGY_SHARES = {"read": 1 / 8, "write": 1 / 2, "update": 0.0}


@register
class FeramSenseAmp(SenseAmp):
    technology = "feram-2tnc"
    label = "QNRO minority sense amp"
    ENERGY_SHARES = {"read": 1 / 4, "write": 0.0, "update": 1 / 2}
    AREA_SHARE = 1 / 2


@register
class FeramRowDecoder(RowDecoder):
    technology = "feram-2tnc"
    ENERGY_SHARES = {"read": 1 / 16, "write": 1 / 32, "update": 0.0}
    AREA_SHARE = 1 / 4


@register
class FeramInterconnect(Interconnect):
    technology = "feram-2tnc"
    label = "tri-state buffer / RSL routing"
    ENERGY_SHARES = {"read": 1 / 16, "write": 1 / 32, "update": 1 / 4}
    AREA_SHARE = 1 / 8
