"""Component estimator base class and registry (Accelergy shape).

A *component* is one named piece of the memory periphery or array —
sense amp, row decoder, wordline/plateline driver, cell array bank,
interconnect — exposing per-row-command action energies
(``action_energy("read"|"write"|"update")``) and a silicon footprint
(``get_area()``).  Technology-specific subclasses (2T-nC FeRAM, DRAM)
carry the decomposition shares and geometry scaling laws; the
:mod:`~repro.arch.components.assemble` module instantiates a component
list for a technology/geometry pair and sums it into a
:class:`~repro.arch.spec.MemorySpec`.

Actions map onto the row-command vocabulary of the spec:

* ``read``   — one row ACTIVATE (QNRO minority sense for FeRAM,
  destructive read + restore for DRAM); sums to ``e_activate``;
* ``write``  — one full row write / COPY drive (FeRAM programs the FE
  capacitors through the complementary WBL/WPL rails); sums to
  ``e_copy`` / ``e_row_write``;
* ``update`` — the precharge/equalize of the array between commands;
  sums to ``e_precharge``.

Classes register themselves under ``(technology, kind)`` via the
:func:`register` decorator, in declaration order — the order the
assembler sums them in, which the exact-partition guarantee depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Mapping

from repro.errors import ArchitectureError

__all__ = [
    "ACTIONS",
    "Component",
    "COMPONENT_REGISTRY",
    "register",
    "component_classes",
    "component_class",
    "component_kinds",
    "technologies",
]

#: the action vocabulary every estimator answers
ACTIONS = ("read", "write", "update")

#: ``(technology, kind) -> component class``, in registration order
COMPONENT_REGISTRY: dict[tuple[str, str], type["Component"]] = {}


def register(cls: type["Component"]) -> type["Component"]:
    """Class decorator: file a component under ``(technology, kind)``."""
    if not cls.kind or not cls.technology:
        raise ArchitectureError(
            f"component {cls.__name__} needs kind and technology")
    key = (cls.technology, cls.kind)
    if key in COMPONENT_REGISTRY:
        raise ArchitectureError(
            f"duplicate component registration {key!r}")
    COMPONENT_REGISTRY[key] = cls
    return cls


def component_classes(technology: str) -> tuple[type["Component"], ...]:
    """All component classes of one technology, registration order."""
    classes = tuple(cls for (tech, _), cls in COMPONENT_REGISTRY.items()
                    if tech == technology)
    if not classes:
        raise ArchitectureError(
            f"no components registered for technology {technology!r}")
    return classes


def component_class(technology: str, kind: str) -> type["Component"]:
    """Look up one registered component class."""
    try:
        return COMPONENT_REGISTRY[(technology, kind)]
    except KeyError:
        raise ArchitectureError(
            f"no component {kind!r} for technology {technology!r}"
        ) from None


def component_kinds(technology: str) -> tuple[str, ...]:
    return tuple(cls.kind for cls in component_classes(technology))


def technologies() -> tuple[str, ...]:
    """Technologies with at least one registered component."""
    seen: list[str] = []
    for tech, _ in COMPONENT_REGISTRY:
        if tech not in seen:
            seen.append(tech)
    return tuple(seen)


@dataclass(frozen=True)
class Component:
    """One instantiated estimator: concrete joules and nm² for a
    technology/geometry point.

    Instances are produced by the assembler, which partitions the
    calibrated per-row command energies across a technology's component
    list according to each class's ``ENERGY_SHARES`` and scales them
    with the class's geometry laws (:meth:`energy_scale`).  They are
    frozen (hashable) so an assembled spec can carry its component list
    through the service's memoization keys.
    """

    read_j: float      #: share of one row ACTIVATE (J)
    write_j: float     #: share of one full row write / COPY (J)
    update_j: float    #: share of one PRECHARGE (J)
    area_nm2: float    #: footprint per cell-site (nm²)

    #: registry key within a technology (stable across technologies)
    kind: ClassVar[str] = ""
    #: technology this class estimates ("feram-2tnc" | "dram")
    technology: ClassVar[str] = ""
    #: human label (e.g. "wordline/plateline driver")
    label: ClassVar[str] = ""
    #: fraction of each calibrated per-row action energy this
    #: component carries (dyadic rationals summing to 1 per action
    #: across a technology's component list)
    ENERGY_SHARES: ClassVar[Mapping[str, float]] = {}
    #: fraction of the periphery area budget (the cell array overrides
    #: :meth:`cell_area_nm2` instead and keeps this at 0)
    AREA_SHARE: ClassVar[float] = 0.0

    # ------------------------------------------------------------------
    def action_energy(self, action: str) -> float:
        """Energy (J) this component contributes to one row command."""
        if action == "read":
            return self.read_j
        if action == "write":
            return self.write_j
        if action == "update":
            return self.update_j
        raise ArchitectureError(
            f"unknown action {action!r} (expected one of {ACTIONS})")

    def get_area(self) -> float:
        """Footprint (nm²) per cell-site, periphery share included."""
        return self.area_nm2

    # -- class-level hooks the assembler drives ------------------------
    @classmethod
    def energy_share(cls, action: str) -> float:
        return cls.ENERGY_SHARES.get(action, 0.0)

    @classmethod
    def energy_scale(cls, action: str, geometry) -> float:
        """Geometry scaling factor relative to the paper's reference
        point (== 1.0 exactly at the reference, preserving bit-exact
        default specs).  Subclasses override per component physics."""
        return 1.0

    @classmethod
    def area_nm2_for(cls, geometry) -> float:
        """Footprint (nm²) per cell-site at a geometry point.

        Periphery components take their ``AREA_SHARE`` of the
        technology's periphery budget (a fixed overhead fraction of
        the cell array, §VII); the cell array overrides this."""
        return cls.AREA_SHARE * geometry.periphery_budget_nm2()
