"""Component-level energy/area estimator registry.

An Accelergy-style registry of named per-component estimators — sense
amp, row decoder, wordline/plateline driver, cell array bank,
interconnect — each exposing ``action_energy("read"|"write"|"update")``
and ``get_area()``, with technology-specific subclasses for 2T-nC
FeRAM and DRAM.  :func:`assemble_memory_spec` sums a component list
into a :class:`~repro.arch.spec.MemorySpec`; the paper's default
specs are assembled this way and remain bit-exact against the
calibrated §VI constants.
"""

from repro.arch.components.assemble import (
    assemble_memory_spec,
    build_components,
    component_breakdown,
    exact_partition,
    paper_memory_spec,
)
from repro.arch.components.base import (
    ACTIONS,
    COMPONENT_REGISTRY,
    Component,
    component_class,
    component_classes,
    component_kinds,
    register,
    technologies,
)
from repro.arch.components.geometry import (
    DRAM_F2_PER_CELL,
    PERIPHERY_OVERHEAD,
    PLANAR_F2_PER_CAP,
    TECH_F_NM,
    VERTICAL_FOOTPRINT_NM,
    CellGeometry,
    reference_geometry,
)
from repro.arch.components.library import (
    DRAM_COSTS,
    FERAM_2TNC_COSTS,
    CellArrayBank,
    Interconnect,
    RowDecoder,
    RowDriver,
    SenseAmp,
    TechnologyCosts,
    technology_costs,
)

__all__ = [
    "ACTIONS",
    "COMPONENT_REGISTRY",
    "Component",
    "register",
    "component_class",
    "component_classes",
    "component_kinds",
    "technologies",
    "CellGeometry",
    "reference_geometry",
    "TECH_F_NM",
    "PLANAR_F2_PER_CAP",
    "VERTICAL_FOOTPRINT_NM",
    "PERIPHERY_OVERHEAD",
    "DRAM_F2_PER_CELL",
    "TechnologyCosts",
    "DRAM_COSTS",
    "FERAM_2TNC_COSTS",
    "technology_costs",
    "SenseAmp",
    "RowDecoder",
    "RowDriver",
    "CellArrayBank",
    "Interconnect",
    "exact_partition",
    "build_components",
    "assemble_memory_spec",
    "paper_memory_spec",
    "component_breakdown",
]
