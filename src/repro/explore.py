"""Design-space explorer: ``repro explore``.

Sweeps the component estimator registry's geometry/technology knobs —
rows per bank, capacitors per cell, feature size, row (word) width —
and re-costs a fixed workload suite at every point through the
**closed-form** ``plan_stats`` accounting.  The workload programs are
compiled and probed exactly once per technology polarity (a single
1-row probe replay yields per-statement :class:`PlanEvents`); each
sweep point then only assembles a :class:`MemorySpec` from the
registry and expands the cached events through its cost tables, so a
sweep over dozens of points costs milliseconds, not replays.

Two figures of merit per point, both minimized:

* ``energy_pj_per_bit`` — suite energy per processed row, normalized
  by the row width;
* ``area_nm2_per_bit`` — the assembled components' footprint per
  stored bit (cell area + periphery budget, over ``n_caps`` bits).

The Pareto front is the non-dominated subset across *all* swept
technologies — the cross-technology front is the headline result (the
paper's 2T-nC FeRAM should dominate the DRAM baseline).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.arch.components import (
    CellGeometry,
    assemble_memory_spec,
    reference_geometry,
)
from repro.arch.primitives import plan_stats
from repro.arch.program import compile_program
from repro.errors import ArchitectureError

__all__ = [
    "DesignPoint",
    "SWEEP_WORKLOADS",
    "default_sweep_geometries",
    "sweep_geometries",
    "evaluate_point",
    "run_explore",
    "pareto_front",
    "format_table",
    "main",
]

TECHNOLOGIES = ("feram-2tnc", "dram")

#: default knob values (the reference point is always included)
DEFAULT_FEATURES_NM = (28.0, 22.0, 16.0)
DEFAULT_FERAM_CAPS = (2, 3, 4)


def _suite_factories() -> dict:
    # Imported lazily: the workload modules pull in numpy and the full
    # service stack, which ``repro.explore`` otherwise never needs.
    from repro.workloads.bnn import BnnInference
    from repro.workloads.crc8 import Crc8
    from repro.workloads.masked_init import MaskedInit
    from repro.workloads.xor_cipher import XorCipher

    return {
        "bnn": lambda: BnnInference(1 << 12, n_features=8, n_neurons=2),
        "crc8": lambda: Crc8(1 << 11, record_bytes=4),
        "xor_cipher": lambda: XorCipher(1 << 11),
        "masked_init": lambda: MaskedInit(3 << 10),
    }


#: the sweep's workload suite (same shapes the golden fixtures pin)
SWEEP_WORKLOADS = ("bnn", "crc8", "xor_cipher", "masked_init")

#: per-(workload, polarity) probed events — filled on first use
_EVENT_CACHE: dict[tuple[str, bool], tuple] = {}


def _program_events(name: str, inverting: bool) -> tuple:
    """Per-statement ``PlanEvents`` of one suite workload (cached)."""
    key = (name, inverting)
    cached = _EVENT_CACHE.get(key)
    if cached is None:
        factories = _suite_factories()
        if name not in factories:
            raise ArchitectureError(f"unknown workload {name!r}")
        program = factories[name]().as_program(seed=1).program
        cprog = compile_program(program, inverting=inverting)
        cached, _ = cprog.cost_events()
        _EVENT_CACHE[key] = cached
    return cached


# ----------------------------------------------------------------------
# one design point
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DesignPoint:
    """One evaluated sweep point (energies per processed table row)."""

    technology: str
    f_nm: float
    n_caps: int
    rows_per_bank: int
    row_bytes: int
    stacking: str
    energy_nj_per_row: float
    energy_pj_per_bit: float
    cycles_per_row: int
    area_nm2_per_bit: float
    workload_nj: dict[str, float]

    def dominates(self, other: "DesignPoint") -> bool:
        """Strict Pareto dominance on (energy/bit, area/bit)."""
        no_worse = (self.energy_pj_per_bit <= other.energy_pj_per_bit
                    and self.area_nm2_per_bit <= other.area_nm2_per_bit)
        better = (self.energy_pj_per_bit < other.energy_pj_per_bit
                  or self.area_nm2_per_bit < other.area_nm2_per_bit)
        return no_worse and better

    def as_dict(self) -> dict:
        return {
            "technology": self.technology,
            "f_nm": self.f_nm,
            "n_caps": self.n_caps,
            "rows_per_bank": self.rows_per_bank,
            "row_bytes": self.row_bytes,
            "stacking": self.stacking,
            "energy_nj_per_row": self.energy_nj_per_row,
            "energy_pj_per_bit": self.energy_pj_per_bit,
            "cycles_per_row": self.cycles_per_row,
            "area_nm2_per_bit": self.area_nm2_per_bit,
            "workload_nj": dict(self.workload_nj),
        }


def evaluate_point(geometry: CellGeometry,
                   workloads=SWEEP_WORKLOADS) -> DesignPoint:
    """Cost the workload suite at one geometry point (closed form).

    Assembles a spec from the registry at ``geometry`` and expands the
    suite's cached per-statement events through ``plan_stats`` with
    ``n_rows=1`` — per-row figures, no replay.
    """
    spec = assemble_memory_spec(geometry.technology, geometry,
                                name=f"{geometry.technology}-sweep")
    inverting = geometry.technology == "feram-2tnc"
    workload_nj: dict[str, float] = {}
    total_energy = 0.0
    total_cycles = 0
    for name in workloads:
        energy = 0.0
        offset = 0
        for events in _program_events(name, inverting):
            stats, offset = plan_stats(spec, events, 1,
                                       tba_offset=offset)
            energy += stats.total_energy_j
            total_cycles += stats.total_cycles
        workload_nj[name] = energy * 1e9
        total_energy += energy
    area_per_bit = (sum(c.get_area() for c in spec.components)
                    / geometry.bits_per_cell)
    return DesignPoint(
        technology=geometry.technology,
        f_nm=geometry.f_nm,
        n_caps=geometry.n_caps,
        rows_per_bank=geometry.rows_per_bank,
        row_bytes=geometry.row_bytes,
        stacking=geometry.stacking,
        energy_nj_per_row=total_energy * 1e9,
        energy_pj_per_bit=total_energy * 1e12 / geometry.row_bits,
        cycles_per_row=total_cycles,
        area_nm2_per_bit=area_per_bit,
        workload_nj=workload_nj,
    )


# ----------------------------------------------------------------------
# sweep grid
# ----------------------------------------------------------------------
def sweep_geometries(technologies=TECHNOLOGIES, *,
                     features_nm=DEFAULT_FEATURES_NM,
                     n_caps_values=None,
                     rows_per_bank_values=None,
                     row_bytes_values=None) -> list[CellGeometry]:
    """The sweep grid: cross product of the knob values per technology.

    ``n_caps`` applies to 2T-nC FeRAM only (a DRAM cell has one
    capacitor by construction); ``rows_per_bank`` and ``row_bytes``
    default to the technology reference when not given.
    """
    points: list[CellGeometry] = []
    for technology in technologies:
        ref = reference_geometry(technology)
        caps = ((1,) if technology == "dram"
                else tuple(n_caps_values) if n_caps_values
                else DEFAULT_FERAM_CAPS)
        rows = tuple(rows_per_bank_values) if rows_per_bank_values \
            else (None,)
        widths = tuple(row_bytes_values) if row_bytes_values \
            else (ref.row_bytes,)
        for f_nm in features_nm:
            for n_caps in caps:
                for row_bytes in widths:
                    geometry = ref.scaled(f_nm=float(f_nm),
                                          n_caps=n_caps,
                                          row_bytes=row_bytes)
                    for rpb in rows:
                        points.append(
                            geometry if rpb is None
                            else geometry.with_rows_per_bank(rpb))
    return points


def default_sweep_geometries() -> list[CellGeometry]:
    """The default grid: both technologies, 3 feature sizes, and the
    FeRAM plane-count variants — 12 points."""
    return sweep_geometries()


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Non-dominated subset, sorted by ascending energy per bit."""
    front = [p for p in points
             if not any(q.dominates(p) for q in points)]
    return sorted(front, key=lambda p: (p.energy_pj_per_bit,
                                        p.area_nm2_per_bit))


def run_explore(geometries=None, *,
                workloads=SWEEP_WORKLOADS) -> dict:
    """Evaluate a sweep and return the full JSON-ready payload."""
    if geometries is None:
        geometries = default_sweep_geometries()
    if not geometries:
        raise ArchitectureError("sweep needs at least one point")
    points = [evaluate_point(g, workloads) for g in geometries]
    front = pareto_front(points)
    front_keys = {id(p) for p in front}
    return {
        "suite": list(workloads),
        "technologies": sorted({p.technology for p in points}),
        "points": [dict(p.as_dict(), pareto=(id(p) in front_keys))
                   for p in points],
        "pareto": [p.as_dict() for p in front],
    }


# ----------------------------------------------------------------------
# presentation
# ----------------------------------------------------------------------
def format_table(payload: dict) -> str:
    """Fixed-width sweep table (the ``*`` column marks the front)."""
    header = (f"{'technology':<12} {'f(nm)':>6} {'caps':>4} "
              f"{'rows/bank':>9} {'rowB':>6} {'pJ/bit':>9} "
              f"{'nm2/bit':>9}  front")
    lines = [header, "-" * len(header)]
    for point in payload["points"]:
        lines.append(
            f"{point['technology']:<12} {point['f_nm']:>6.1f} "
            f"{point['n_caps']:>4d} {point['rows_per_bank']:>9d} "
            f"{point['row_bytes']:>6d} "
            f"{point['energy_pj_per_bit']:>9.3f} "
            f"{point['area_nm2_per_bit']:>9.1f}  "
            f"{'*' if point['pareto'] else ''}")
    lines.append(f"pareto front: {len(payload['pareto'])} of "
                 f"{len(payload['points'])} points "
                 f"(suite: {', '.join(payload['suite'])})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``repro explore`` entry point (see ``repro.cli``)."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro explore",
                                     add_help=True)
    parser.add_argument("--tech", default="both",
                        choices=("both",) + TECHNOLOGIES,
                        help="technologies to sweep (default: both)")
    parser.add_argument("--feature", type=float, nargs="+",
                        default=list(DEFAULT_FEATURES_NM),
                        metavar="NM",
                        help="feature sizes in nm "
                             f"(default: {list(DEFAULT_FEATURES_NM)})")
    parser.add_argument("--caps", type=int, nargs="+", default=None,
                        metavar="N",
                        help="FeRAM capacitors per cell "
                             f"(default: {list(DEFAULT_FERAM_CAPS)})")
    parser.add_argument("--rows-per-bank", type=int, nargs="+",
                        default=None, metavar="N",
                        help="bank depths (default: reference)")
    parser.add_argument("--row-bytes", type=int, nargs="+",
                        default=None, metavar="B",
                        help="row (word) widths in bytes "
                             "(default: reference 8 KiB)")
    parser.add_argument("--workloads", nargs="+",
                        default=list(SWEEP_WORKLOADS),
                        choices=list(SWEEP_WORKLOADS),
                        help="workload suite subset")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args(argv)

    technologies = TECHNOLOGIES if args.tech == "both" \
        else (args.tech,)
    geometries = sweep_geometries(
        technologies,
        features_nm=tuple(args.feature),
        n_caps_values=args.caps,
        rows_per_bank_values=args.rows_per_bank,
        row_bytes_values=args.row_bytes,
    )
    payload = run_explore(geometries,
                          workloads=tuple(args.workloads))
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(payload))
    return 0
