"""Synchronous TCP client for the bulk-bitwise query service with
retry, backoff and reconnect.

:class:`ServiceClient` speaks both wires (JSON-lines and the binary
``REPB`` frames of :mod:`repro.service.wire`) and layers fault
tolerance over the raw socket:

* **retry with exponential backoff + jitter** for retryable failures
  (connection drops, ``shutting_down``, ``admission`` rejections);
* a server-provided ``retry_after_ms`` hint — attached to admission
  and quota rejections — overrides the computed backoff, so clients
  wait exactly as long as the server asks instead of guessing;
* **reconnect**: a dropped or drained connection is transparently
  re-established (including the hello handshake) before the retry;
* non-retryable errors (bad query, unknown column, protocol misuse)
  raise :class:`ServiceError` immediately — retrying cannot fix them.

The backoff schedule is deterministic when seeded, so tests assert
exact wait sequences.  ``sleep`` is injectable for the same reason.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass

import numpy as np

from repro.arch.expr import _parse_key_bits
from repro.errors import ProtocolError, ReproError
from repro.service.wire import (
    HEADER_SIZE,
    KIND_REQUEST,
    decode_frame,
    decode_header,
    encode_frame,
)

__all__ = ["RetryPolicy", "RetriesExhausted", "ServiceClient",
           "ServiceError"]

#: response codes worth retrying (with reconnect where noted)
_RETRYABLE_CODES = ("admission", "shutting_down")


class ServiceError(ReproError):
    """The server answered with a non-retryable error response."""

    def __init__(self, message: str, *, code: str | None = None,
                 ) -> None:
        super().__init__(message)
        self.code = code


class RetriesExhausted(ServiceError):
    """Every attempt failed; ``last_error`` holds the final cause."""

    def __init__(self, message: str, *, last_error=None) -> None:
        super().__init__(message)
        self.last_error = last_error


@dataclass
class RetryPolicy:
    """Exponential backoff with full-range jitter.

    ``delay_s(attempt)`` grows ``base_ms * multiplier**attempt`` up to
    ``max_ms``; a server ``retry_after_ms`` hint replaces the computed
    base outright.  Jitter multiplies by ``1 ± jitter`` so synchronized
    clients spread out.  Seed the policy for deterministic tests."""

    max_attempts: int = 5
    base_ms: float = 10.0
    multiplier: float = 2.0
    max_ms: float = 2000.0
    jitter: float = 0.2
    seed: int | None = None

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay_s(self, attempt: int,
                hint_ms: float | None = None) -> float:
        if hint_ms is not None:
            base = float(hint_ms)
        else:
            base = min(self.max_ms,
                       self.base_ms * self.multiplier ** attempt)
        if self.jitter:
            base *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return max(base, 0.0) / 1e3


def _read_exact(stream, n: int) -> bytes:
    if not n:
        return b""
    # The buffered stream satisfies the whole read in one call unless
    # the connection drops mid-frame; keep that path allocation-free.
    first = stream.read(n)
    if len(first) == n:
        return first
    if not first:
        raise ConnectionError("server closed the connection")
    chunks = [first]
    remaining = n - len(first)
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise ConnectionError("server closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class ServiceClient:
    """Retrying, reconnecting client for one server endpoint.

    ``call()`` is the primitive: send one request dict (plus optional
    bit payload on the binary wire), return the ``ok`` response dict,
    retrying per the policy.  Convenience wrappers cover the common
    ops.  ``metrics`` counts retries/reconnects/backoff for tests and
    benchmarks."""

    def __init__(self, host: str, port: int, *,
                 tenant: str | None = None, wire: str = "json",
                 policy: RetryPolicy | None = None,
                 timeout_s: float = 10.0, sleep=None) -> None:
        if wire not in ("json", "binary"):
            raise ServiceError(f"unknown wire {wire!r}")
        self.host = host
        self.port = port
        self.tenant = tenant
        self.wire = wire
        self.policy = policy or RetryPolicy()
        self.timeout_s = timeout_s
        self._sleep = sleep if sleep is not None else time.sleep
        self._sock: socket.socket | None = None
        self._stream = None
        self.hello: dict | None = None
        self.metrics = {"requests": 0, "retries": 0, "reconnects": 0,
                        "backoff_s": 0.0}

    # -- connection management -----------------------------------------
    def connect(self) -> dict:
        """(Re)establish the connection and run the hello handshake."""
        self.disconnect()
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout_s)
        stream = sock.makefile("rwb")
        hello = {"op": "hello", "tenant": self.tenant,
                 "wire": self.wire}
        stream.write((json.dumps(hello) + "\n").encode())
        stream.flush()
        line = stream.readline()
        if not line:
            sock.close()
            raise ConnectionError("server closed during hello")
        reply = json.loads(line.decode())
        if not reply.get("ok"):
            sock.close()
            raise ServiceError(reply.get("error", "hello rejected"),
                               code=reply.get("code"))
        self._sock, self._stream, self.hello = sock, stream, reply
        return reply

    def disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._stream.close()
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._stream = None

    close = disconnect

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.disconnect()

    # -- one request/response exchange ---------------------------------
    def _send_recv(self, request: dict, bits=None) -> dict:
        if self.wire == "binary":
            self._stream.write(encode_frame(KIND_REQUEST, request,
                                            bits))
            self._stream.flush()
            header = decode_header(_read_exact(self._stream,
                                               HEADER_SIZE))
            meta_bytes = _read_exact(self._stream, header.meta_len)
            payload = _read_exact(self._stream, header.payload_bytes)
            response, page = decode_frame(header, meta_bytes, payload)
            if page is not None:
                response["bits"] = page
            return response
        if bits is not None:
            request = {**request, "bits": np.asarray(
                bits).astype(int, copy=False).tolist()}
        self._stream.write((json.dumps(request) + "\n").encode())
        self._stream.flush()
        line = self._stream.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode())

    # -- the retry loop ------------------------------------------------
    def call(self, request: dict, bits=None) -> dict:
        """Send one request, retrying per the policy; returns the
        ``ok`` response dict or raises :class:`ServiceError` /
        :class:`RetriesExhausted`."""
        self.metrics["requests"] += 1
        attempt = 0
        last_error: BaseException | None = None
        while True:
            hint_ms = None
            response = None
            try:
                if self._sock is None:
                    if self.hello is not None:
                        self.metrics["reconnects"] += 1
                    self.connect()
                response = self._send_recv(request, bits)
            except (OSError, ConnectionError, EOFError,
                    ProtocolError, json.JSONDecodeError) as exc:
                # Transport-level failure: reconnect on next attempt.
                self.disconnect()
                last_error = exc
            if response is not None:
                if response.get("ok"):
                    return response
                code = response.get("code")
                if code not in _RETRYABLE_CODES:
                    raise ServiceError(
                        response.get("error", "request failed"),
                        code=code)
                last_error = ServiceError(
                    response.get("error", "rejected"), code=code)
                if code == "shutting_down":
                    self.disconnect()
                else:
                    hint_ms = response.get("retry_after_ms")
            attempt += 1
            if attempt >= self.policy.max_attempts:
                raise RetriesExhausted(
                    f"request failed after {attempt} attempts: "
                    f"{last_error}", last_error=last_error)
            delay = self.policy.delay_s(attempt - 1, hint_ms)
            self.metrics["retries"] += 1
            self.metrics["backoff_s"] += delay
            self._sleep(delay)

    # -- convenience ops -----------------------------------------------
    def query(self, expr: str) -> dict:
        return self.call({"op": "query", "expr": expr})

    def batch(self, exprs) -> list[dict]:
        return self.call({"op": "batch",
                          "exprs": list(exprs)})["results"]

    def match(self, cols, key, mask=None) -> dict:
        """CAM search over a column group.

        ``key``/``mask`` follow the ``match()`` grammar — ``"1x0"``
        strings (``x`` = don't care) or bit sequences.  On the binary
        wire the key and mask travel as packed payload segments; the
        JSON wire inlines the ternary literal as text.
        """
        cols = [str(c) for c in cols]
        bits, care = _parse_key_bits(key, len(cols), what="key")
        if mask is not None:
            mbits, _ = _parse_key_bits(mask, len(cols), what="mask",
                                       allow_x=False)
            care = tuple(c & m for c, m in zip(care, mbits))
        if self.wire == "binary":
            return self.call(
                {"op": "match", "cols": cols,
                 "value_names": ["key", "mask"]},
                [np.asarray(bits, dtype=np.uint8),
                 np.asarray(care, dtype=np.uint8)])
        literal = "".join("x" if not c else str(b)
                          for b, c in zip(bits, care))
        return self.call({"op": "match", "cols": cols,
                          "key": literal})

    def create_column(self, name: str, bits) -> dict:
        return self.call({"op": "create_column", "name": name},
                         np.asarray(bits))

    def update_column(self, name: str, bits) -> dict:
        return self.call({"op": "update_column", "name": name},
                         np.asarray(bits))

    def write_slice(self, name: str, offset: int, bits) -> dict:
        return self.call({"op": "write_slice", "name": name,
                          "offset": int(offset)}, np.asarray(bits))

    def append_rows(self, values: dict, n: int | None = None) -> dict:
        if self.wire == "binary":
            names = list(values)
            return self.call(
                {"op": "append_rows", "n": n, "value_names": names},
                [np.asarray(values[name]) for name in names])
        return self.call({
            "op": "append_rows", "n": n,
            "values": {name: np.asarray(bits).astype(int).tolist()
                       for name, bits in values.items()}})

    def bits(self, name: str, offset: int = 0, limit: int = 64,
             ) -> dict:
        return self.call({"op": "bits", "name": name,
                          "offset": int(offset),
                          "limit": int(limit)})

    def stats(self) -> dict:
        return self.call({"op": "stats"})["stats"]

    def columns(self) -> list[str]:
        return self.call({"op": "columns"})["columns"]
