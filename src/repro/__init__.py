"""repro — reproduction of "Single-Cell Universal Logic-in-Memory Using
2T-nC FeRAM: An Area and Energy-Efficient Approach for Bulk Bitwise
Computation" (SOCC 2025).

Subpackages
-----------
``repro.spice``
    MNA transient circuit solver (Spectre substitute).
``repro.ferro``
    Multi-domain ferroelectric capacitor physics (Preisach + NLS dynamics,
    reliability, temperature dependence).
``repro.core``
    The paper's contribution: the 2T-nC FeRAM logic-in-memory cell with
    QNRO sensing, NOT via inverting read, and MINORITY/NAND/NOR via
    triple-bit activation.
``repro.arch``
    Command-level memory-architecture simulator (pLUTo-extension
    substitute): DRAM AAP vs FeRAM ACP bulk-bitwise execution.
``repro.workloads``
    The eight evaluated data-intensive applications.
``repro.integration``
    Planar vs vertical-3D area and density models.
``repro.thermal``
    HotSpot-substitute steady-state 3-D thermal solver.
``repro.experiments``
    One driver per paper figure/table, with paper-vs-measured reporting.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
