"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch the package's failures without
masking genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CircuitError(ReproError):
    """Raised for malformed netlists (unknown nodes, duplicate names, ...)."""


class ConvergenceError(ReproError):
    """Raised when the Newton-Raphson loop fails to converge.

    Attributes
    ----------
    time:
        Simulation time (seconds) at which convergence failed.
    iterations:
        Number of Newton iterations attempted.
    """

    def __init__(self, message: str, *, time: float = float("nan"),
                 iterations: int = 0) -> None:
        super().__init__(message)
        self.time = time
        self.iterations = iterations


class DeviceError(ReproError):
    """Raised for invalid device parameters or state."""


class ProtocolError(ReproError):
    """Raised when a protocol is violated: a mis-specified
    cell-operation protocol, a malformed or oversized binary wire
    frame, or a server response that cannot be serialized to the
    wire format."""


class ArchitectureError(ReproError):
    """Raised for invalid memory-architecture configuration or commands."""


class WorkloadError(ReproError):
    """Raised when a workload is configured or planned inconsistently."""


class QueryError(ReproError):
    """Raised for malformed logic expressions or bad query bindings
    (unknown columns, width mismatches, service misuse)."""


class ThermalError(ReproError):
    """Raised for invalid thermal stacks or non-converging solves."""


class ExperimentError(ReproError):
    """Raised when an experiment driver cannot produce its artefact."""
