"""Fig. 2: destructive charge sensing (1T-1C) vs inverting QNRO (2T-nC).

Regenerates the paper's qualitative comparison quantitatively:

* reading a 1T-1C FeRAM cell storing '1' collapses its polarization
  toward the plate-line polarity (write-back required);
* a QNRO read of the 2T-nC cell moves the stored polarization by only a
  few µC/cm² (quasi-nondestructive) and the sensed output is the
  *complement* of the stored bit.
"""

from __future__ import annotations

from repro.core.cell import OneT1CFeRAMCell, TwoTnCCell
from repro.core.operations import CellOperations
from repro.experiments.result import ExperimentReport, Record

__all__ = ["run_fig2"]

N_DOMAINS = 24


def run_fig2() -> ExperimentReport:
    report = ExperimentReport(
        "fig2", "Destructive 1T-1C read vs quasi-nondestructive 2T-nC read")

    # --- 1T-1C: destructive ------------------------------------------
    # PL-high reading forces the cap toward '0': the stored '1' flips.
    cell_1 = OneT1CFeRAMCell(initial_bit=1, n_domains=N_DOMAINS)
    p_before = cell_1.fecap.polarization_uc_cm2()
    v_signal_1, p_after = cell_1.destructive_read()
    lost = (p_after - p_before) < -0.5 * abs(p_before)
    report.add(Record("1T-1C stored-'1' polarization lost on read",
                      float(lost), "", paper=1.0, tolerance=0.0,
                      note=f"P {p_before:.1f} -> {p_after:.1f} uC/cm2"))
    cell_0 = OneT1CFeRAMCell(initial_bit=0, n_domains=N_DOMAINS)
    v_signal_0, _ = cell_0.destructive_read()
    report.add(Record("1T-1C read signal contrast",
                      v_signal_1 / max(v_signal_0, 1e-12), "x",
                      paper=None,
                      note=f"BL peak '1'={v_signal_1:.3f} V, "
                           f"'0'={v_signal_0:.3f} V"))
    report.add(Record("1T-1C '1' dumps large charge",
                      float(v_signal_1 > 2.0 * v_signal_0), "",
                      paper=1.0, tolerance=0.0))

    # --- 2T-nC: quasi-nondestructive, inverting ----------------------
    cell = TwoTnCCell(n_caps=1, n_domains=N_DOMAINS)
    ops = CellOperations(cell, dt=1e-9)
    ops.calibrate_not_reference()
    for bit in (0, 1):
        op = ops.op_not(bit)
        drift = abs(op.p_after[0] - op.p_before[0])
        report.add(Record(f"2T-nC read drift, stored '{bit}'", drift,
                          "uC/cm2", paper=0.0, tolerance=8.0,
                          note="quasi-nondestructive: small partial "
                               "switching only"))
        report.add(Record(f"2T-nC output inverts stored '{bit}'",
                          float(op.output_bit == 1 - bit), "", paper=1.0,
                          tolerance=0.0))
        report.add(Record(f"2T-nC stored '{bit}' still decodes",
                          float(op.bits_after[0] == bit), "", paper=1.0,
                          tolerance=0.0))
    return report
