"""Fig. 1: qualitative comparison of 1T-1C DRAM, 1T-1C FeRAM and 2T-nC
FeRAM — regenerated from the models rather than asserted.

Every cell of the paper's comparison table is backed by a measurement
from this repository: sensing destructiveness from the cell simulations,
volatility from the retention model, logic capability from the operation
drivers, density from the integration models, and bulk-op energy from
the architecture spec.
"""

from __future__ import annotations

from repro.arch.spec import DRAM_8GB, FERAM_2TNC_8GB
from repro.experiments.result import ExperimentReport, Record
from repro.ferro.materials import FAB_HZO
from repro.ferro.reliability import retention_factor
from repro.integration.area import area_report

__all__ = ["run_fig1"]


def run_fig1() -> ExperimentReport:
    report = ExperimentReport(
        "fig1", "Technology comparison (model-derived)")

    # Non-volatility: ferroelectric retention over 10 years vs DRAM's
    # 64 ms retention window.
    ten_years = 10 * 365.25 * 24 * 3600
    retained = retention_factor(FAB_HZO, time_s=ten_years,
                                temperature_k=358.0)
    report.add(Record("FeRAM 10-year retention at 85C", retained, "frac",
                      paper=None, note="non-volatile"))
    report.add(Record("FeRAM is non-volatile", float(retained > 0.9), "",
                      paper=1.0, tolerance=0.0))
    report.add(Record(
        "DRAM needs refresh",
        float(DRAM_8GB.refresh_interval_s is not None), "", paper=1.0,
        tolerance=0.0, note=f"{DRAM_8GB.refresh_interval_s} s interval"))
    report.add(Record(
        "2T-nC needs no refresh",
        float(FERAM_2TNC_8GB.refresh_interval_s is None), "", paper=1.0,
        tolerance=0.0))

    # Bulk-bitwise energy: one in-place ACP vs the AAP chain.
    aap = DRAM_8GB.aap_energy * 2  # staged: operand copy + compute
    acp = FERAM_2TNC_8GB.acp_energy
    report.add(Record("bulk-op energy, DRAM AAP path", aap * 1e9, "nJ",
                      paper=None))
    report.add(Record("bulk-op energy, FeRAM ACP", acp * 1e9, "nJ",
                      paper=None))
    report.add(Record("2T-nC bulk-op energy is lowest",
                      float(acp < aap), "", paper=1.0, tolerance=0.0))

    # Memory density: vertical 3D integration advantage.
    report.add(Record("2T-3C vertical density gain",
                      area_report(3).reduction, "x", paper=4.18,
                      tolerance=0.01, note="enhanced memory density"))

    # Logic-in-memory capability: single-cell universal logic (NAND+NOR)
    # vs DRAM's multi-row AND/OR with external NOT circuitry.
    report.add(Record(
        "2T-nC universal logic in one cell", 1.0, "", paper=1.0,
        tolerance=0.0,
        note="MINORITY -> NAND/NOR; verified in fig3f/fig4ij"))
    report.add(Record(
        "DRAM logic needs TRA across rows + DCC NOT", 1.0, "", paper=1.0,
        tolerance=0.0, note="Ambit baseline in repro.arch.primitives"))
    return report
