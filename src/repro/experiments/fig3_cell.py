"""Fig. 3(d, f): SPICE-level cell operations on the 2T-nC netlist.

* (d) the NOT operation: write '0'/'1', QNRO-sense; the SA output is the
  complement and the stored polarization survives the read;
* (f) TBA NAND-NOR: for every stored state '000'..'111' the RSL current
  is ordered by the number of stored zeros and the SA (referenced
  between the '001' and '011' levels) emits MINORITY.
"""

from __future__ import annotations

import numpy as np

from repro.core.cell import TwoTnCCell
from repro.core.logic import minority3
from repro.core.operations import CellOperations
from repro.experiments.result import ExperimentReport, Record

__all__ = ["run_fig3d", "run_fig3f"]

#: reduced domain count keeps the transient runs to ~seconds while
#: preserving the distribution tails that create the QNRO signal
N_DOMAINS = 24


def run_fig3d(*, dt: float = 1e-9) -> ExperimentReport:
    """SPICE simulation of the NOT operation."""
    report = ExperimentReport("fig3d", "NOT via inverting QNRO (SPICE)")
    cell = TwoTnCCell(n_caps=1, n_domains=N_DOMAINS)
    ops = CellOperations(cell, dt=dt)
    ops.calibrate_not_reference()
    for bit in (0, 1):
        op = ops.op_not(bit)
        report.add(Record(f"NOT({bit}) output", float(op.output_bit), "",
                          paper=float(1 - bit), tolerance=0.0))
        report.add(Record(
            f"NOT({bit}) state preserved", float(op.state_preserved()),
            "", paper=1.0, tolerance=0.0,
            note=f"P {op.p_before[0]:.1f} -> {op.p_after[0]:.1f} uC/cm2"))
        report.extras[f"traces_bit{bit}"] = op.result
    # The sensed levels must be well separated (paper: high current for
    # '0', low for '1').
    i0 = ops.op_not(0).rsl_current
    i1 = ops.op_not(1).rsl_current
    report.add(Record("I_RSL('0') / I_RSL('1')", i0 / i1, "", paper=None,
                      note="sense contrast; >5x required for a robust SA"))
    report.add(Record("sense contrast above 5x", float(i0 / i1 > 5.0),
                      "", paper=1.0, tolerance=0.0))
    return report


def run_fig3f(*, dt: float = 1e-9) -> ExperimentReport:
    """SPICE simulation of TBA NAND-NOR (all eight stored states)."""
    report = ExperimentReport("fig3f", "TBA MINORITY / NAND-NOR (SPICE)")
    cell = TwoTnCCell(n_caps=3, n_domains=N_DOMAINS)
    ops = CellOperations(cell, dt=dt)
    levels = ops.tba_level_sweep()
    by_zeros: dict[int, list[float]] = {}
    for state, current in levels.items():
        by_zeros.setdefault(3 - sum(state), []).append(current)
    means = [float(np.mean(by_zeros[k])) for k in range(4)]
    monotone = all(a < b for a, b in zip(means, means[1:]))
    report.add(Record("RSL current increases with #zeros",
                      float(monotone), "", paper=1.0, tolerance=0.0,
                      note=f"levels {['%.2e' % m for m in means]}"))
    # Degeneracy: states with equal weight sense equal.
    max_spread = max(
        (max(v) - min(v)) / max(max(v), 1e-30)
        for v in by_zeros.values())
    report.add(Record("same-weight states degenerate (spread)",
                      max_spread, "", paper=0.0, tolerance=0.05))
    ops.calibrate_minority_reference()
    correct = 0
    for a in (0, 1):
        for b in (0, 1):
            for c in (0, 1):
                op = ops.op_minority(a, b, c)
                if op.output_bit == minority3(a, b, c):
                    correct += 1
    report.add(Record("MINORITY truth table correct", float(correct), "/8",
                      paper=8.0, tolerance=0.0))
    nand_ok = all(ops.op_nand(a, b).output_bit == 1 - (a & b)
                  for a in (0, 1) for b in (0, 1))
    nor_ok = all(ops.op_nor(a, b).output_bit == 1 - (a | b)
                 for a in (0, 1) for b in (0, 1))
    report.add(Record("NAND via control C=0", float(nand_ok), "",
                      paper=1.0, tolerance=0.0))
    report.add(Record("NOR via control C=1", float(nor_ok), "",
                      paper=1.0, tolerance=0.0))
    report.extras["levels"] = levels
    return report
