"""Extension experiments beyond the paper's figures.

These quantify claims the paper makes in prose but does not plot:

* ``variation`` — Monte-Carlo MINORITY sense margins under
  device-to-device variation ("reliable MINORITY function", "robust
  reliability");
* ``writeback`` — QNRO write-back economics versus destructive sensing
  ("minimizing write-backs and enhancing endurance (>10^6 cycles)").
"""

from __future__ import annotations

from repro.arch.writeback import compare_writeback_policies
from repro.core.variation import run_variation_study
from repro.experiments.result import ExperimentReport, Record

__all__ = ["run_variation", "run_writeback"]


def run_variation(n_cells: int = 24) -> ExperimentReport:
    """Grain-count scaling of MINORITY margins under MC variation.

    Finding: with independent per-grain coercive voltages, the same-
    weight level degeneracy (Fig. 4(i)'s "perfect linearity") breaks
    statistically; reliable all-state MINORITY sensing needs roughly a
    thousand grains per capacitor (or equivalent averaging), reached
    here at the 1024-hysteron device.  Reference cells must also track
    the local process corner.
    """
    report = ExperimentReport(
        "variation", "Monte-Carlo MINORITY margins vs grain count")
    yields = {}
    studies = {}
    for n_domains in (256, 512, 1024):
        study = run_variation_study(n_cells, reference_mode="tracking",
                                    n_domains=n_domains)
        yields[n_domains] = study.read_yield
        studies[n_domains] = study
        report.add(Record(f"tracking yield, {n_domains} grains",
                          study.read_yield, "", paper=None,
                          note=f"{study.failures} hard failures"))
        report.extras[f"tracking_{n_domains}"] = study
    ordered = [yields[n] for n in (256, 512, 1024)]
    report.add(Record("yield grows with grain count",
                      float(ordered[0] <= ordered[1] <= ordered[2]), "",
                      paper=1.0, tolerance=0.0))
    report.add(Record("yield at 1024 grains", ordered[-1], "",
                      paper=1.0, tolerance=0.05))
    report.add(Record("hard failures at 1024 grains",
                      float(studies[1024].failures), "", paper=0.0,
                      tolerance=0.0))
    global_ref = run_variation_study(n_cells, reference_mode="global",
                                     n_domains=1024)
    report.add(Record("global-reference yield (motivates tracking)",
                      global_ref.read_yield, "", paper=None,
                      note=f"{global_ref.failures} hard failures with "
                           f"one array-wide reference"))
    report.add(Record("tracking not worse than global reference",
                      float(ordered[-1] >= global_ref.read_yield), "",
                      paper=1.0, tolerance=0.0))
    return report


def run_writeback() -> ExperimentReport:
    report = ExperimentReport(
        "writeback", "QNRO write-back economics vs destructive sensing")
    destructive, qnro = compare_writeback_policies()
    report.add(Record("QNRO reads per write-back",
                      float(qnro.reads_per_writeback), "", paper=None,
                      note=qnro.name))
    report.add(Record("QNRO supports multiple reads per scrub",
                      float(qnro.reads_per_writeback >= 10), "",
                      paper=1.0, tolerance=0.0))
    energy_saving = (destructive.energy_per_read_j
                     / qnro.energy_per_read_j)
    report.add(Record("energy per read, destructive / QNRO",
                      energy_saving, "x", paper=None))
    report.add(Record("QNRO cheaper per read",
                      float(energy_saving > 1.5), "", paper=1.0,
                      tolerance=0.0))
    endurance_gain = (qnro.endurance_reads(1e6)
                      / destructive.endurance_reads(1e6))
    report.add(Record("read endurance gain at 1e6 write cycles",
                      endurance_gain, "x", paper=None,
                      note="reads sustainable before wearing the cell"))
    report.add(Record("endurance extended by scrub period",
                      float(endurance_gain ==
                            qnro.reads_per_writeback), "", paper=1.0,
                      tolerance=0.0))
    return report
