"""Fig. 7 / §VII: thermal analysis of the stacked 2T-nC FeRAM SoC.

A 5-layer (n+2, n=3) 2 GB vertical FeRAM die on a 28 W edge-TPU compute
die, natural-convection package, 300 K ambient, executing the bitmap
index query.  Paper results reproduced:

* steady-state peak temperature ≈ 351.88 K;
* the thermal profile is consistent across all eight workloads (memory
  power is small next to the compute die's 28 W);
* the ferroelectric remains stable at the operating temperature.
"""

from __future__ import annotations

from repro.experiments.result import ExperimentReport, Record
from repro.ferro.materials import FAB_HZO
from repro.ferro.thermal_response import check_thermal_stability
from repro.thermal.powermap import (
    memory_power_maps,
    tpu_power_map,
    workload_memory_power,
)
from repro.thermal.solver import ThermalResult, solve_steady_state
from repro.thermal.stack import build_fig7_stack
from repro.workloads.base import Workload
from repro.workloads.bitmap_index import BitmapIndexQuery
from repro.workloads.runner import make_workloads, run_comparison

__all__ = ["solve_workload_stack", "run_fig7", "calibrate_package"]

GIB = 1 << 30
GRID_NX = 32
GRID_NY = 24
MEMORY_LAYERS = ("L1-TR", "L2-C1", "L3-C2", "L4-C3", "L5-TW")


def solve_workload_stack(workload: Workload, *,
                         package_resistance_k_w: float | None = None,
                         ) -> ThermalResult:
    """Steady-state solve for one workload's FeRAM power on the stack."""
    comparison = run_comparison(workload)
    memory_w = workload_memory_power(comparison.feram)
    kwargs = {}
    if package_resistance_k_w is not None:
        kwargs["package_resistance_k_w"] = package_resistance_k_w
    stack = build_fig7_stack(3, **kwargs)
    power_maps = {0: tpu_power_map(GRID_NX, GRID_NY)}
    layer_ids = [stack.layer_index(name) for name in MEMORY_LAYERS]
    power_maps.update(memory_power_maps(memory_w, layer_ids,
                                        GRID_NX, GRID_NY))
    return solve_steady_state(stack, power_maps, nx=GRID_NX, ny=GRID_NY)


def run_fig7(*, all_workloads: bool = False) -> ExperimentReport:
    report = ExperimentReport("fig7", "Stacked-SoC thermal analysis")
    result = solve_workload_stack(BitmapIndexQuery(GIB))
    report.add(Record("peak temperature (bitmap query)", result.peak_k,
                      "K", paper=351.88, tolerance=0.01))
    # Gradient across the memory layers is small and monotone away from
    # the compute die (Fig. 7(b): ~349.5-352 K band).
    layer_peaks = [result.layer_peak(result.stack.layer_index(name))
                   for name in MEMORY_LAYERS]
    report.add(Record("memory-layer gradient", layer_peaks[0]
                      - layer_peaks[-1], "K", paper=None,
                      note="T_R (nearest compute) minus T_W (top)"))
    report.add(Record("gradient is positive toward compute die",
                      float(layer_peaks[0] > layer_peaks[-1]), "",
                      paper=1.0, tolerance=0.0))
    die_band = result.peak_k - float(result.temperatures_k[:7].min())
    report.add(Record("in-die temperature band", die_band, "K",
                      paper=2.4, tolerance=1.0,
                      note="paper colourbar spans ~349.5-352 K"))
    stability = check_thermal_stability(FAB_HZO, result.peak_k)
    report.add(Record("ferroelectric stable at peak T",
                      float(stability.stable), "", paper=1.0,
                      tolerance=0.0,
                      note=f"Pr fraction {stability.pr_fraction:.3f}"))
    if all_workloads:
        peaks = []
        for workload in make_workloads(GIB):
            res = solve_workload_stack(workload)
            peaks.append(res.peak_k)
            report.extras[f"peak_{workload.name}"] = res.peak_k
        spread = max(peaks) - min(peaks)
        report.add(Record("profile consistent across workloads", spread,
                          "K", paper=0.0, tolerance=2.0,
                          note="peak-to-peak across the eight workloads"))
    report.extras["result"] = result
    return report


def calibrate_package(target_peak_k: float = 351.88, *,
                      lo: float = 0.3, hi: float = 4.0,
                      iterations: int = 40) -> float:
    """Bisection on the package resistance to hit the paper's peak.

    This is the single free parameter of the thermal model (HotSpot's
    package description is not given in the paper); everything else —
    layer gradients, workload insensitivity, stability margins — is then
    a prediction.
    """
    workload = BitmapIndexQuery(GIB)
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        result = solve_workload_stack(workload,
                                      package_resistance_k_w=mid)
        if result.peak_k < target_peak_k:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
