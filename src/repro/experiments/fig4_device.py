"""Fig. 4(d-h): fabricated-device characterization, regenerated on the
simulated test chip (FAB_NMOS transistor + FAB_HZO capacitor models).

* (d) transistor transfer curve — on/off ≈ 1e7, SS ≈ 110 mV/dec;
* (e) P-V loops 300-390 K — Pr ≈ 22.3 µC/cm² nearly constant, Vc
  decreasing with temperature, |Q_FE(3 V)| ≈ 38 µC/cm²;
* (f) endurance — Pr stable through ≥ 1e6 ±3 V/10 µs cycles;
* (g, h) switching kinetics — full reversal in < 300 ns at ±3 V, with
  the decades-wide pulse-width dependence of polycrystalline HZO.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.result import ExperimentReport, Record
from repro.ferro.dynamics import (
    minimum_full_switch_pulse,
    pulse_switched_polarization,
)
from repro.ferro.materials import FAB_HZO, UC_PER_CM2
from repro.ferro.reliability import EnduranceModel, endurance_sweep
from repro.ferro.thermal_response import temperature_family
from repro.spice.mosfet import FAB_NMOS, Mosfet, subthreshold_swing_mv_per_dec

__all__ = ["run_fig4d", "run_fig4e", "run_fig4f", "run_fig4gh"]


def run_fig4d() -> ExperimentReport:
    """Transfer curve of the fabricated MOSFET at VD = 0.1 V."""
    report = ExperimentReport("fig4d", "Fabricated MOSFET transfer curve")
    device = Mosfet("dut", "d", "g", "s", FAB_NMOS)
    vg = np.linspace(-1.0, 3.0, 161)
    ids = np.array([device.ids(v, 0.1) for v in vg])
    on_off = float(ids.max() / ids.min())
    report.add(Record("on/off ratio", on_off, "", paper=1e7,
                      tolerance=0.5,
                      note="max/min of ID over the -1..3 V sweep"))
    report.add(Record("subthreshold swing",
                      subthreshold_swing_mv_per_dec(FAB_NMOS), "mV/dec",
                      paper=110.0, tolerance=0.05))
    # Measured SS from the curve itself (steepest decade slope).
    logi = np.log10(ids)
    slopes = np.diff(vg) / np.diff(logi)
    valid = slopes[(slopes > 0) & (ids[1:] > 10 * ids.min())
                   & (ids[1:] < 1e-6)]
    measured_ss = float(np.min(valid)) * 1e3
    report.add(Record("swept subthreshold swing", measured_ss, "mV/dec",
                      paper=110.0, tolerance=0.15))
    report.extras["vg"] = vg
    report.extras["ids"] = ids
    return report


def run_fig4e() -> ExperimentReport:
    """P-V loop family, 300-390 K."""
    report = ExperimentReport("fig4e", "P-V loops vs temperature")
    family = temperature_family(FAB_HZO)
    pr_300 = family[300.0]["pr_plus"] * UC_PER_CM2
    report.add(Record("Pr at 300 K", pr_300, "uC/cm2", paper=22.3,
                      tolerance=0.05))
    pr_390 = family[390.0]["pr_plus"] * UC_PER_CM2
    report.add(Record("Pr at 390 K / Pr at 300 K", pr_390 / pr_300, "",
                      paper=1.0, tolerance=0.05,
                      note="remanent polarization nearly constant"))
    vcs = [family[t]["vc_plus"] for t in (300.0, 330.0, 360.0, 390.0)]
    monotone = all(a > b for a, b in zip(vcs, vcs[1:]))
    report.add(Record("Vc decreases with temperature", float(monotone),
                      "", paper=1.0, tolerance=0.0,
                      note=f"Vc+ = {['%.2f' % v for v in vcs]}"))
    from repro.ferro.thermal_response import pv_loop_at_temperature
    v, q = pv_loop_at_temperature(FAB_HZO, 300.0)
    q_max = float(np.max(q)) * UC_PER_CM2
    report.add(Record("QFE at +3 V", q_max, "uC/cm2", paper=38.0,
                      tolerance=0.1))
    report.extras["family"] = family
    return report


def run_fig4f() -> ExperimentReport:
    """Endurance: Pr± versus bipolar ±3 V / 10 µs cycling."""
    report = ExperimentReport("fig4f", "MFM endurance")
    cycles, pr_plus, pr_minus = endurance_sweep(FAB_HZO)
    model = EnduranceModel()
    report.add(Record("stable through 1e6 cycles",
                      float(model.stable_through(1e6)), "", paper=1.0,
                      tolerance=0.0))
    spread = float(pr_plus[-1] / pr_plus[5])
    report.add(Record("Pr(1e6) / Pr(woken)", spread, "", paper=1.0,
                      tolerance=0.1))
    report.add(Record("Pr symmetric", float(np.allclose(pr_plus,
                                                        -pr_minus)),
                      "", paper=1.0, tolerance=0.0))
    report.extras["cycles"] = cycles
    report.extras["pr_plus_uc"] = pr_plus * UC_PER_CM2
    report.extras["pr_minus_uc"] = pr_minus * UC_PER_CM2
    return report


def run_fig4gh(*, quick: bool = False) -> ExperimentReport:
    """Switching kinetics ΔP(width, amplitude) for both polarities."""
    report = ExperimentReport("fig4gh", "Switching dynamics")
    t_switch = minimum_full_switch_pulse(FAB_HZO, 3.0)
    report.add(Record("90% switching pulse at +3 V", t_switch, "s",
                      paper=300e-9, tolerance=0.4,
                      note="paper: switches with pulses under 300 ns"))
    widths = np.logspace(-7, -2, 8 if quick else 18)
    amplitudes = (1.5, 2.0, 2.5, 3.0)
    curves: dict[float, np.ndarray] = {}
    for amp in amplitudes:
        dp = np.array([pulse_switched_polarization(FAB_HZO, amp, w)
                       for w in widths]) * UC_PER_CM2
        curves[amp] = dp
        monotone = bool(np.all(np.diff(dp) >= -1e-9))
        report.add(Record(f"dP monotone in width at {amp} V",
                          float(monotone), "", paper=1.0, tolerance=0.0))
    # Higher amplitude switches strictly more at every width.
    ordered = all(bool(np.all(curves[hi] >= curves[lo] - 1e-9))
                  for lo, hi in zip(amplitudes, amplitudes[1:]))
    report.add(Record("dP ordered by amplitude", float(ordered), "",
                      paper=1.0, tolerance=0.0))
    dp_max = float(curves[3.0].max())
    report.add(Record("saturated dP at 3 V", dp_max, "uC/cm2",
                      paper=2 * 22.3, tolerance=0.1,
                      note="full reversal switches ~2 Pr"))
    # Negative polarity mirrors positive (Fig. 4(g) vs (h)).
    dp_neg = pulse_switched_polarization(FAB_HZO, -3.0, 1e-5) * UC_PER_CM2
    dp_pos = pulse_switched_polarization(FAB_HZO, 3.0, 1e-5) * UC_PER_CM2
    report.add(Record("polarity symmetry |dP-/dP+|", dp_neg / dp_pos, "",
                      paper=1.0, tolerance=0.05))
    report.extras["widths"] = widths
    report.extras["curves_uc_cm2"] = curves
    return report
