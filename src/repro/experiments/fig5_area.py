"""Fig. 5 / §V: planar vs vertical-3D area and density."""

from __future__ import annotations

from repro.experiments.result import ExperimentReport, Record
from repro.integration.area import area_report
from repro.integration.density import density_comparison
from repro.integration.stack3d import FIG7_DIE

__all__ = ["run_fig5"]


def run_fig5() -> ExperimentReport:
    report = ExperimentReport("fig5", "3D integration area and density")
    cell = area_report(3)
    report.add(Record("2T-1C planar area", area_report(1).planar_f2, "F^2",
                      paper=30.0, tolerance=0.0))
    report.add(Record("2T-3C planar area", cell.planar_f2, "F^2",
                      paper=90.0, tolerance=0.0))
    report.add(Record("2T-3C planar area @28nm", cell.planar_nm2, "nm^2",
                      paper=90 * 28 * 28, tolerance=0.0))
    report.add(Record("vertical footprint", cell.vertical_nm2, "nm^2",
                      paper=130 * 130, tolerance=0.0))
    report.add(Record("footprint reduction", cell.reduction, "x",
                      paper=4.18, tolerance=0.01))
    density = density_comparison(3)
    report.add(Record("storage density gain (1 deck)",
                      density.storage_gain, "x", paper=4.18,
                      tolerance=0.01))
    density4 = density_comparison(3, n_decks=4)
    report.add(Record("storage density gain (4 decks)",
                      density4.storage_gain, "x", paper=4 * 4.18,
                      tolerance=0.01,
                      note="'further enhanced by stacking multiple "
                           "layers vertically'"))
    report.add(Record("Fig. 7 die capacity", FIG7_DIE.capacity_gb, "GB",
                      paper=2.0, tolerance=0.15,
                      note="14.2 x 10.65 mm die, 50% periphery overhead"))
    report.extras["cell"] = cell
    report.extras["density"] = density
    return report
