"""Fig. 6: energy and execution cycles for the eight workloads.

Paper headline: 2T-nC FeRAM delivers ≈2.5× lower energy and ≈2× higher
performance than the Ambit-style DRAM baseline at 8 GB / 8 KB rows with
1 GB workloads.
"""

from __future__ import annotations

from repro.arch.spec import DRAM_8GB, StagingPolicy
from repro.experiments.result import ExperimentReport, Record
from repro.workloads.runner import run_fig6 as _run_table

__all__ = ["run_fig6", "run_policy_ablation"]

GIB = 1 << 30


def run_fig6(n_bytes: int = GIB) -> ExperimentReport:
    report = ExperimentReport("fig6", "Workload energy & performance")
    table = _run_table(n_bytes)
    report.add(Record("geomean energy reduction",
                      table.mean_energy_ratio(), "x", paper=2.5,
                      tolerance=0.15))
    report.add(Record("geomean performance gain",
                      table.mean_cycle_ratio(), "x", paper=2.0,
                      tolerance=0.15))
    for row in table.rows:
        report.add(Record(f"{row.title}: FeRAM wins energy",
                          float(row.energy_ratio > 1.5), "", paper=1.0,
                          tolerance=0.0,
                          note=f"E {row.energy_ratio:.2f}x, "
                               f"C {row.cycle_ratio:.2f}x"))
        report.add(Record(f"{row.title}: FeRAM wins cycles",
                          float(row.cycle_ratio > 1.3), "", paper=1.0,
                          tolerance=0.0))
    report.extras["table"] = table
    return report


def run_policy_ablation(n_bytes: int = GIB // 4) -> ExperimentReport:
    """DRAM staging-policy ablation: paper / staged / ambit accounting.

    Brackets the headline factors: the paper-literal single-AAP model is
    DRAM's best case, the faithful Ambit sequences its worst.
    """
    report = ExperimentReport("fig6_ablation",
                              "DRAM staging-policy ablation")
    previous_energy = 0.0
    for policy in (StagingPolicy.PAPER, StagingPolicy.STAGED,
                   StagingPolicy.AMBIT):
        table = _run_table(n_bytes,
                           dram_spec=DRAM_8GB.with_policy(policy))
        energy_ratio = table.mean_energy_ratio()
        report.add(Record(f"geomean energy ratio [{policy}]",
                          energy_ratio, "x", paper=None))
        report.add(Record(f"geomean cycle ratio [{policy}]",
                          table.mean_cycle_ratio(), "x", paper=None))
        report.add(Record(f"ratio grows with staging [{policy}]",
                          float(energy_ratio >= previous_energy), "",
                          paper=1.0, tolerance=0.0))
        previous_energy = energy_ratio
        report.extras[policy] = table
    return report
