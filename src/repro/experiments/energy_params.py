"""§VI energy parameters, derived bottom-up ("derived based on our
cell-level SPICE simulation" in the paper).

The paper quotes per-row command energies: ACTIVATE 22.6 nJ (DRAM) /
16.6 nJ (2T-nC FeRAM), PRECHARGE 0.32 nJ.  This module reconstructs
those numbers from per-bit components — cell switching charge from the
device models plus wire/driver/sense terms with documented assumptions —
and additionally derives the FeRAM COPY/write energy (28 nJ) used by the
architecture spec.

Key asymmetry (the paper's central energy argument): the QNRO read
avoids full polarization reversal, so the FeRAM ACTIVATE moves only the
weak-domain charge (~fC/cell), whereas writes/copies fully reverse the
polarization *and* drive two rails (WBL + WPL).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.components import (
    DRAM_COSTS,
    FERAM_2TNC_COSTS,
    component_breakdown,
    reference_geometry,
)
from repro.experiments.result import ExperimentReport, Record
from repro.ferro.materials import NVDRAM_CAL
from repro.ferro.preisach import DomainBank

__all__ = ["RowEnergyModel", "derive_row_energies", "run_energy_params"]

#: bits per row of the §VI evaluation geometry (registry-derived)
ROW_BITS = reference_geometry("feram-2tnc").row_bits


@dataclass(frozen=True)
class RowEnergyModel:
    """Per-bit components (farads/volts/joules) for one command class."""

    name: str
    wire_cap_f: float       # driven wire capacitance per bit
    wire_swing_v: float     # voltage swing on that wire
    wire_rail_v: float      # supply it is charged from
    cell_charge_c: float    # charge moved in the cell
    cell_voltage_v: float   # voltage that charge crosses
    periphery_j: float      # decoder/SA/driver share per bit

    def per_bit_j(self) -> float:
        wire = self.wire_cap_f * self.wire_swing_v * self.wire_rail_v
        cell = self.cell_charge_c * self.cell_voltage_v
        return wire + cell + self.periphery_j

    def per_row_j(self, row_bits: int = ROW_BITS) -> float:
        return self.per_bit_j() * row_bits


def _qnro_read_charge() -> float:
    """Weak-tail charge moved by one QNRO read of a stored '0' (C)."""
    bank = DomainBank(NVDRAM_CAL)
    bank.set_uniform(-1.0)
    p0 = bank.polarization()
    bank.apply_voltage(0.55, 50e-9)  # effective cap voltage during read
    return abs(bank.polarization() - p0) * NVDRAM_CAL.area


def _full_write_charge() -> float:
    """Charge of a full polarization reversal (C)."""
    return NVDRAM_CAL.full_switching_charge


def derive_row_energies() -> dict[str, RowEnergyModel]:
    """Bottom-up models for the four §VI command energies.

    Assumptions (per bit): DRAM bitline ~150 fF restored across 1.1 V
    from a 1.5 V rail; FeRAM WBL ~120 fF at the 0.75 V read voltage from
    1.5 V; writes drive WBL+WPL complementary rails (~2 x 145 fF) at
    full swing; precharge resets a ~20 fF RSL/buffer node at 0.5 V.
    Periphery (decoder + SA share) is 60-90 fJ/bit.
    """
    return {
        "dram_activate": RowEnergyModel(
            name="dram_activate", wire_cap_f=150e-15, wire_swing_v=1.1,
            wire_rail_v=1.5, cell_charge_c=30e-15, cell_voltage_v=1.1,
            periphery_j=65e-15),
        "feram_activate": RowEnergyModel(
            name="feram_activate", wire_cap_f=120e-15, wire_swing_v=0.75,
            wire_rail_v=1.5, cell_charge_c=_qnro_read_charge(),
            cell_voltage_v=0.75, periphery_j=115e-15),
        "feram_copy": RowEnergyModel(
            name="feram_copy", wire_cap_f=2 * 145e-15, wire_swing_v=1.0,
            wire_rail_v=1.5, cell_charge_c=_full_write_charge(),
            cell_voltage_v=1.5, periphery_j=0.0),
        "precharge": RowEnergyModel(
            name="precharge", wire_cap_f=19.5e-15, wire_swing_v=0.5,
            wire_rail_v=0.5, cell_charge_c=0.0, cell_voltage_v=0.0,
            periphery_j=0.0),
    }


def run_energy_params() -> ExperimentReport:
    report = ExperimentReport(
        "energy_params", "Row-command energies, bottom-up")
    models = derive_row_energies()
    # Targets come from the component registry's calibrated cost
    # tables — the single source of the §VI scalars — and the bottom-up
    # per-bit models must land within tolerance of them.
    targets = {
        "dram_activate": DRAM_COSTS.row_read_j,
        "feram_activate": FERAM_2TNC_COSTS.row_read_j,
        "feram_copy": FERAM_2TNC_COSTS.row_write_j,
        "precharge": FERAM_2TNC_COSTS.row_update_j,
    }
    for key, target in targets.items():
        derived = models[key].per_row_j()
        report.add(Record(f"{key} per row", derived * 1e9, "nJ",
                          paper=target * 1e9, tolerance=0.25))
    # The registry's per-component decomposition must reconstruct the
    # calibrated totals exactly (the assembled-spec guarantee).
    for technology, costs in (("feram-2tnc", FERAM_2TNC_COSTS),
                              ("dram", DRAM_COSTS)):
        parts = component_breakdown(technology)
        total = 0.0
        for row in parts:
            total += row["read_nj"]
        report.add(Record(
            f"{technology} activate from {len(parts)} components",
            total, "nJ", paper=costs.row_read_j * 1e9,
            tolerance=1e-12,
            note="assembled-spec decomposition"))
    # The asymmetry claim: QNRO read moves far less cell charge than a
    # full write (the paper's "avoiding full polarization reversal").
    read_q = _qnro_read_charge()
    write_q = _full_write_charge()
    report.add(Record("write/read cell-charge ratio", write_q / read_q,
                      "x", paper=None,
                      note="QNRO moves only the weak-domain tail"))
    report.add(Record("QNRO read cheaper than write",
                      float(write_q > 5 * read_q), "", paper=1.0,
                      tolerance=0.0))
    return report
