"""Experiment registry: every paper artefact mapped to its driver."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ExperimentError
from repro.experiments.fig1_comparison import run_fig1
from repro.experiments.fig2_sensing import run_fig2
from repro.experiments.fig3_cell import run_fig3d, run_fig3f
from repro.experiments.fig4_device import (
    run_fig4d,
    run_fig4e,
    run_fig4f,
    run_fig4gh,
)
from repro.experiments.fig4_minority import run_fig4ij
from repro.experiments.fig5_area import run_fig5
from repro.experiments.extensions import run_variation, run_writeback
from repro.experiments.fig6_workloads import run_fig6, run_policy_ablation
from repro.experiments.fig7_thermal import run_fig7
from repro.experiments.energy_params import run_energy_params
from repro.experiments.result import ExperimentReport

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

#: experiment id -> zero-argument driver
EXPERIMENTS: dict[str, Callable[[], ExperimentReport]] = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3d": run_fig3d,
    "fig3f": run_fig3f,
    "fig4d": run_fig4d,
    "fig4e": run_fig4e,
    "fig4f": run_fig4f,
    "fig4gh": run_fig4gh,
    "fig4ij": run_fig4ij,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig6_ablation": run_policy_ablation,
    "fig7": run_fig7,
    "energy_params": run_energy_params,
    "variation": run_variation,
    "writeback": run_writeback,
}


def run_experiment(experiment_id: str) -> ExperimentReport:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    try:
        driver = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return driver()


def run_all(*, skip: tuple[str, ...] = ()) -> dict[str, ExperimentReport]:
    """Run every registered experiment (optionally skipping slow ones)."""
    return {experiment_id: driver()
            for experiment_id, driver in EXPERIMENTS.items()
            if experiment_id not in skip}
