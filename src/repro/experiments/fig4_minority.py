"""Fig. 4(i, j): measured MINORITY on the fabricated 2T-nC cell.

Replayed on the "virtual test chip": FAB_HZO capacitors (probe-station
area, ±3 V writes) + the fabricated long-channel read transistor, with a
probe-pad-dominated internal node.  Reproduced claims:

* the RBL current decreases as the number of stored '1's increases
  (opposite/inverting trend vs 1T-1C);
* the level spacing is near-linear in the input weight ("perfect
  linearity");
* a comparator referenced between the '001' and '011' output levels
  computes MINORITY, separating {000, 001-weight} from {011-weight, 111}.
"""

from __future__ import annotations

import numpy as np

from repro.core.behavioral import BehavioralCell
from repro.core.logic import minority3
from repro.core.sense_amp import SenseAmp, reference_between
from repro.experiments.result import ExperimentReport, Record
from repro.ferro.materials import FAB_HZO
from repro.spice.mosfet import FAB_NMOS

__all__ = ["make_fabricated_cell", "run_fig4ij"]


def make_fabricated_cell(rng: np.random.Generator | None = None,
                         ) -> BehavioralCell:
    """Behavioural cell configured like the §IV measurement setup."""
    return BehavioralCell(
        n_caps=3,
        material=FAB_HZO,
        tr_params=FAB_NMOS,
        c_node=150e-12,      # probe pads + cabling dominate the node
        v_write=3.0,
        t_write=10e-6,       # the paper's ±3 V / 10 µs programming
        v_read=3.0,          # read pulse: stored-'0' caps fully switch,
        t_read=70e-6,        # delivering 2Pr*A each onto the node over
        v_rbl=0.1,           # the Fig. 4(i) ~70 us observation window
        rng=rng)


def run_fig4ij() -> ExperimentReport:
    report = ExperimentReport(
        "fig4ij", "Measured MINORITY: RBL current vs stored state")
    cell = make_fabricated_cell()
    levels = cell.level_sweep(mode="charge")
    by_ones: dict[int, list[float]] = {}
    for state, current in levels.items():
        by_ones.setdefault(sum(state), []).append(current)
    means = np.array([np.mean(by_ones[k]) for k in range(4)])
    report.add(Record("current decreases with #ones (opposite trend)",
                      float(bool(np.all(np.diff(means) < 0))), "",
                      paper=1.0, tolerance=0.0,
                      note=f"levels {['%.3e' % m for m in means]}"))
    # Near-linearity: fit I(k) = a + b k, check residuals.
    k = np.arange(4)
    coeffs = np.polyfit(k, means, 1)
    fit = np.polyval(coeffs, k)
    span = means.max() - means.min()
    nonlin = float(np.max(np.abs(means - fit)) / span)
    report.add(Record("linearity deviation", nonlin, "frac of span",
                      paper=0.0, tolerance=0.08,
                      note="paper: 'perfect linearity'"))
    # Comparator between '001' and '011' levels computes MINORITY.
    ref = reference_between(levels[(0, 1, 1)], levels[(0, 0, 1)])
    sa = SenseAmp(ref)
    correct = sum(
        sa.compare(levels[(a, b, c)]) == minority3(a, b, c)
        for a in (0, 1) for b in (0, 1) for c in (0, 1))
    report.add(Record("MINORITY decisions correct", float(correct), "/8",
                      paper=8.0, tolerance=0.0))
    margin_low = levels[(0, 0, 1)] - ref
    margin_high = ref - levels[(0, 1, 1)]
    report.add(Record("reference margin symmetric",
                      margin_low / max(margin_high, 1e-30), "", paper=1.0,
                      tolerance=0.2))
    report.extras["levels"] = levels
    report.extras["means_by_ones"] = means
    return report
