"""Paper-figure regeneration drivers with paper-vs-measured reporting.

Run ``python -m repro <experiment-id>`` or use :func:`run_experiment`.
"""

from repro.experiments.energy_params import derive_row_energies, run_energy_params
from repro.experiments.extensions import run_variation, run_writeback
from repro.experiments.fig1_comparison import run_fig1
from repro.experiments.fig2_sensing import run_fig2
from repro.experiments.fig3_cell import run_fig3d, run_fig3f
from repro.experiments.fig4_device import (
    run_fig4d,
    run_fig4e,
    run_fig4f,
    run_fig4gh,
)
from repro.experiments.fig4_minority import make_fabricated_cell, run_fig4ij
from repro.experiments.fig5_area import run_fig5
from repro.experiments.fig6_workloads import run_fig6, run_policy_ablation
from repro.experiments.fig7_thermal import (
    calibrate_package,
    run_fig7,
    solve_workload_stack,
)
from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment
from repro.experiments.result import ExperimentReport, Record

__all__ = [
    "Record",
    "ExperimentReport",
    "EXPERIMENTS",
    "run_experiment",
    "run_all",
    "run_fig1",
    "run_fig2",
    "run_fig3d",
    "run_fig3f",
    "run_fig4d",
    "run_fig4e",
    "run_fig4f",
    "run_fig4gh",
    "run_fig4ij",
    "make_fabricated_cell",
    "run_fig5",
    "run_fig6",
    "run_policy_ablation",
    "run_fig7",
    "solve_workload_stack",
    "calibrate_package",
    "run_energy_params",
    "derive_row_energies",
    "run_variation",
    "run_writeback",
]
