"""Paper-vs-measured record types shared by all experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError

__all__ = ["Record", "ExperimentReport"]


@dataclass(frozen=True)
class Record:
    """One reproduced quantity.

    ``paper`` is the paper's reported value (None for shape-only
    checks); ``measured`` is ours; ``tolerance`` is the relative band
    within which we call it a match (interpreted on |measured - paper| /
    |paper|).  For qualitative checks use ``passed`` directly.
    """

    name: str
    measured: float
    unit: str = ""
    paper: float | None = None
    tolerance: float = 0.25
    note: str = ""

    @property
    def passed(self) -> bool:
        if self.paper is None:
            return True
        if self.paper == 0:
            return abs(self.measured) <= self.tolerance
        return abs(self.measured - self.paper) <= self.tolerance \
            * abs(self.paper)

    def format(self) -> str:
        status = "ok" if self.passed else "MISMATCH"
        paper = "-" if self.paper is None else f"{self.paper:g}"
        line = (f"{self.name:<42} paper={paper:<12} "
                f"measured={self.measured:<12.6g} {self.unit:<8} [{status}]")
        if self.note:
            line += f"  ({self.note})"
        return line


@dataclass
class ExperimentReport:
    """All records of one experiment plus free-form extras."""

    experiment_id: str
    title: str
    records: list[Record] = field(default_factory=list)
    extras: dict = field(default_factory=dict)

    def add(self, record: Record) -> None:
        self.records.append(record)

    def record(self, name: str) -> Record:
        for rec in self.records:
            if rec.name == name:
                return rec
        raise ExperimentError(
            f"{self.experiment_id}: no record named {name!r}")

    @property
    def passed(self) -> bool:
        return all(rec.passed for rec in self.records)

    def format(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines += [rec.format() for rec in self.records]
        lines.append(f"-- {'PASS' if self.passed else 'FAIL'} "
                     f"({len(self.records)} records)")
        return "\n".join(lines)
