"""Command-line entry point: ``python -m repro [experiment-id ...]``.

With no arguments, lists available experiments.  ``all`` runs the whole
registry.
"""

from __future__ import annotations

import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro <experiment-id ...|all>")
        print("available experiments:")
        for experiment_id in EXPERIMENTS:
            print(f"  {experiment_id}")
        return 0
    ids = list(EXPERIMENTS) if args == ["all"] else args
    failed = 0
    for experiment_id in ids:
        report = run_experiment(experiment_id)
        print(report.format())
        print()
        if not report.passed:
            failed += 1
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
