"""Command-line entry point: ``python -m repro``.

Four modes:

* ``python -m repro [experiment-id ...|all]`` — run paper experiments
  (no arguments lists the registry);
* ``python -m repro query "<expr>" [options]`` — one-shot compiled
  query over generated columns, with compiled-vs-naive primitive
  counts;
* ``python -m repro workload <name|all> [options]`` — run a dataflow
  workload (BNN, CRC8, XOR cipher, masked init) as a multi-statement
  program on the service, on either execution backend, with
  verification and per-statement cost attribution;
* ``python -m repro serve [options]`` — start the bulk-bitwise query
  service as an interactive console or (``--port``) a JSON-lines TCP
  server;
* ``python -m repro explore [options]`` — closed-form design-space
  sweep over the component registry's geometry/technology knobs,
  reporting energy/area Pareto fronts.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main"]

_USAGE = """\
usage: python -m repro <experiment-id ...|all>
       python -m repro query "<expr>" [--tech T] [--shards N] [--bits N]
       python -m repro workload <name|all> [--backend B] [--bytes N]
       python -m repro serve [--tech T] [--shards N] [--bits N] [--port P]
       python -m repro explore [--tech T] [--feature NM ...] [--json]
"""


def _service_parser(prog: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, add_help=True)
    parser.add_argument("--tech", default="feram-2tnc",
                        choices=("feram-2tnc", "dram"),
                        help="memory technology (default: feram-2tnc)")
    parser.add_argument("--shards", type=int, default=4,
                        help="engine shards (default: 4)")
    parser.add_argument("--bits", type=int, default=1 << 20,
                        help="table width in bits (default: 1Mi)")
    parser.add_argument("--counting", action="store_true",
                        help="counting mode (no payloads; GB-scale)")
    parser.add_argument("--backend", default="vector",
                        choices=("vector", "reference"),
                        help="columnar numpy executor (default) or the "
                             "per-shard engine-replay ground truth")
    parser.add_argument("--capacity", type=int, default=None,
                        help="physical table width; rows can be "
                             "appended up to this (default: --bits)")
    parser.add_argument("--workers", type=int, default=None,
                        help="shard-worker processes over a shared-"
                             "memory column store; >1 scatters each "
                             "large plan's row blocks across pinned "
                             "processes (default: 1, serial "
                             "in-process execution)")
    parser.add_argument("--replicas", type=int, default=0,
                        help="asynchronously-fed read replicas of "
                             "the shared-memory store; reads route "
                             "to them under the generation-fence "
                             "staleness contract (default: 0)")
    parser.add_argument("--no-fuse", action="store_true",
                        help="disable the peephole fuser on vector "
                             "programs (run the unfused bytecode)")
    return parser


def _cmd_query(argv: list[str]) -> int:
    parser = _service_parser("repro query")
    parser.add_argument("expr", help="query, e.g. '(a & b) | ~c'")
    parser.add_argument("--density", type=float, default=0.3,
                        help="1-density of generated columns")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args(argv)

    from repro.arch.expr import parse
    from repro.service import BitwiseService
    from repro.service.server import result_payload

    expr = parse(args.expr)
    with BitwiseService(args.tech, n_bits=args.bits,
                        n_shards=args.shards,
                        functional=not args.counting,
                        backend=args.backend,
                        capacity=args.capacity,
                        fuse=not args.no_fuse,
                        workers=args.workers,
                        replicas=args.replicas) as service:
        for index, name in enumerate(expr.cols()):
            service.random_column(name, args.density,
                                  seed=args.seed + index)
        result = service.query(expr)
        payload = result_payload(result)
        payload["query"] = args.expr
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(f"query     : {args.expr}")
            print(f"tech      : {args.tech}  "
                  f"({args.bits} bits x {result.shards} shards)")
            if result.count is not None:
                print(f"hits      : {result.count}")
            print(f"primitives: {result.primitives_per_row}/row compiled "
                  f"vs {result.naive_primitives_per_row}/row naive chain")
            print(f"energy    : {result.energy_j * 1e9:.1f} nJ   "
                  f"cycles: {result.cycles}")
    return 0


def _cmd_workload(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="repro workload", add_help=True)
    parser.add_argument("name",
                        help="bnn | crc8 | xor_cipher | masked_init "
                             "| all")
    parser.add_argument("--tech", default="feram-2tnc",
                        choices=("feram-2tnc", "dram"),
                        help="memory technology (default: feram-2tnc)")
    parser.add_argument("--backend", default="vector",
                        choices=("vector", "reference"),
                        help="columnar numpy executor (default) or the "
                             "per-shard engine-replay ground truth")
    parser.add_argument("--bytes", type=int, default=1 << 20,
                        help="workload data size (default: 1 MiB)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--counting", action="store_true",
                        help="counting mode (no payloads; GB-scale)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--per-statement", action="store_true",
                        help="print the per-statement cost attribution")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args(argv)

    from repro.workloads import PROGRAM_WORKLOADS, run_workload

    names = sorted(PROGRAM_WORKLOADS) if args.name == "all" \
        else [args.name]
    for name in names:
        run = run_workload(
            name, n_bytes=args.bytes, technology=args.tech,
            backend=args.backend, n_shards=args.shards,
            functional=not args.counting, seed=args.seed)
        payload = {
            "workload": run.workload,
            "technology": run.technology,
            "backend": run.backend,
            "lanes": run.n_lanes,
            "statements": run.statements,
            "verified": run.verified,
            "energy_nj": run.energy_j * 1e9,
            "energy_per_lane_nj": run.energy_per_lane_nj,
            "cycles": run.cycles,
            "elapsed_s": run.elapsed_s,
            "lanes_per_s": run.lanes_per_s,
        }
        if args.json:
            if args.per_statement:
                payload["per_statement"] = [
                    {"index": s.index, "name": s.name,
                     "query": s.query, "energy_nj": s.energy_j * 1e9,
                     "cycles": s.cycles}
                    for s in run.result.statements
                ]
            print(json.dumps(payload, indent=2))
            if run.verified is False:
                return 1
            continue
        print(f"workload  : {run.workload}  ({run.technology}, "
              f"backend={run.backend})")
        print(f"lanes     : {run.n_lanes}  "
              f"({run.statements} program statements)")
        if run.verified is not None:
            print(f"verified  : {run.verified}")
        print(f"energy    : {run.energy_j * 1e9:.1f} nJ   "
              f"({run.energy_per_lane_nj:.3f} nJ/lane)")
        print(f"cycles    : {run.cycles}")
        print(f"throughput: {run.lanes_per_s / 1e6:.1f} M lanes/s "
              f"({run.elapsed_s * 1e3:.2f} ms)")
        if args.per_statement:
            print(f"{'#':>5} {'name':<14}{'cycles':>9}{'nJ':>12}  query")
            for s in run.result.statements:
                print(f"{s.index:>5} {s.name:<14}{s.cycles:>9}"
                      f"{s.energy_j * 1e9:>12.1f}  {s.query}")
        if run.verified is False:
            return 1
        if len(names) > 1:
            print()
    return 0


def _cmd_serve(argv: list[str]) -> int:
    parser = _service_parser("repro serve")
    parser.add_argument("--port", type=int, default=None,
                        help="serve JSON-lines over TCP on this port")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--batch-window-ms", type=float, default=1.0,
                        help="scheduler batching window: concurrent "
                             "queries arriving within it coalesce "
                             "into one vector batch (default: 1 ms)")
    parser.add_argument("--max-batch", type=int, default=128,
                        help="max queries per coalesced batch")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="per-tenant admission limit (in-flight "
                             "requests; override per tenant via "
                             "register_tenant)")
    parser.add_argument("--data-dir", default=None,
                        help="durable state directory: recover the "
                             "store/tenants from its snapshot + WAL "
                             "on startup, log every mutation barrier "
                             "before acknowledging it")
    parser.add_argument("--snapshot-every", type=int, default=256,
                        help="mutation barriers between automatic "
                             "snapshots (0 = only on shutdown; "
                             "default: 256)")
    parser.add_argument("--wal-sync", default="batch",
                        choices=("always", "batch", "none"),
                        help="WAL fsync policy: every record / "
                             "mutation barriers only (default) / "
                             "never (tests, benchmarks)")
    parser.add_argument("--request-timeout-ms", type=float,
                        default=None,
                        help="per-batch executor deadline; a slow "
                             "batch errors out, the connection and "
                             "co-tenants survive (default: off)")
    parser.add_argument("--inject", default=None,
                        help="fault-injection spec, e.g. "
                             "'wal.fsync:after=3,batch.delay:"
                             "param=0.05' (env: REPRO_FAULTS)")
    args = parser.parse_args(argv)

    import os
    import signal

    from repro.service import (
        BitwiseService,
        FaultInjector,
        run_repl,
        serve_tcp,
    )
    from repro.service.durability import (
        DurabilityManager,
        recover_service,
    )

    injector = FaultInjector.from_spec(
        args.inject or os.environ.get("REPRO_FAULTS"))
    if args.data_dir is not None:
        if args.counting or args.backend != "vector":
            parser.error("--data-dir requires the functional "
                         "vector backend")
        service = recover_service(
            args.data_dir, technology=args.tech, n_bits=args.bits,
            n_shards=args.shards, capacity=args.capacity,
            snapshot_every=args.snapshot_every or None,
            sync=args.wal_sync, injector=injector,
            fuse=not args.no_fuse, workers=args.workers,
            replicas=args.replicas)
        recovery = service.durability.last_recovery
        print(f"recovered from {args.data_dir}: "
              f"generation {recovery['generation']}, "
              f"{recovery['records_replayed']} WAL records replayed"
              + (", torn tail discarded"
                 if recovery['torn_tail_discarded'] else "")
              + f" ({recovery['elapsed_s'] * 1e3:.0f} ms)")
    else:
        service = BitwiseService(args.tech, n_bits=args.bits,
                                 n_shards=args.shards,
                                 functional=not args.counting,
                                 backend=args.backend,
                                 capacity=args.capacity,
                                 fuse=not args.no_fuse,
                                 workers=args.workers,
                                 replicas=args.replicas)
    with service:
        if args.port is None:
            try:
                return run_repl(service)
            finally:
                if service.durability is not None:
                    service.checkpoint()
        server = serve_tcp(
            service, args.port, args.host,
            batch_window_s=args.batch_window_ms / 1e3,
            max_batch=args.max_batch,
            max_pending=args.max_pending,
            request_timeout_s=(args.request_timeout_ms / 1e3
                               if args.request_timeout_ms else None),
            injector=injector)
        host, port = server.server_address[:2]
        print(f"serving bulk-bitwise queries on {host}:{port} "
              f"({args.tech}, {args.bits} bits x "
              f"{service.n_shards} shards, "
              f"{args.batch_window_ms:g} ms batch window"
              + (f", durable in {args.data_dir}"
                 if args.data_dir else "") + ")")

        # SIGTERM/SIGINT drain in-flight batches, flush the WAL,
        # write a final snapshot, and notify connections with a
        # typed shutting_down error (server_close does all four).
        def _graceful(signum, frame):
            server.shutdown()

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _graceful)
            except (ValueError, OSError):
                pass  # not the main thread / unsupported platform
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            for signum, handler in previous.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, OSError):
                    pass
            server.shutdown()
            server.server_close()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "query":
        return _cmd_query(args[1:])
    if args and args[0] == "workload":
        return _cmd_workload(args[1:])
    if args and args[0] == "serve":
        return _cmd_serve(args[1:])
    if args and args[0] == "explore":
        from repro.explore import main as explore_main
        return explore_main(args[1:])
    if not args:
        print(_USAGE, end="")
        print("available experiments:")
        for experiment_id in EXPERIMENTS:
            print(f"  {experiment_id}")
        return 0
    ids = list(EXPERIMENTS) if args == ["all"] else args
    failed = 0
    for experiment_id in ids:
        report = run_experiment(experiment_id)
        print(report.format())
        print()
        if not report.passed:
            failed += 1
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
