"""The paper's eight data-intensive bulk-bitwise applications (§VI):
CRC8, XOR Cipher, Set Union/Intersection/Difference, Masked
Initialization, Bitmap Index Query, and BNN Inference — each with a
technology-independent kernel and a numpy reference for bit-exact
verification.
"""

from repro.workloads.base import Workload, WorkloadIO, WorkloadResult
from repro.workloads.bitmap_index import BitmapIndexQuery
from repro.workloads.bnn import BnnInference
from repro.workloads.cam import (
    TopKResult,
    classify_packets,
    hamming_topk,
    key_value_lookup,
    load_records,
    oracle_classify,
    oracle_lookup,
    oracle_match,
    oracle_topk,
)
from repro.workloads.crc8 import Crc8, crc8_reference
from repro.workloads.masked_init import MaskedInit
from repro.workloads.programs import WorkloadProgram, generate_inputs
from repro.workloads.runner import (
    PROGRAM_WORKLOADS,
    WORKLOAD_CLASSES,
    Fig6Table,
    WorkloadComparison,
    WorkloadServiceRun,
    make_workloads,
    run_comparison,
    run_fig6,
    run_workload,
)
from repro.workloads.set_ops import SetDifference, SetIntersection, SetUnion
from repro.workloads.xor_cipher import XorCipher

__all__ = [
    "Workload",
    "WorkloadIO",
    "WorkloadResult",
    "Crc8",
    "crc8_reference",
    "XorCipher",
    "SetUnion",
    "SetIntersection",
    "SetDifference",
    "MaskedInit",
    "BitmapIndexQuery",
    "BnnInference",
    "TopKResult",
    "classify_packets",
    "hamming_topk",
    "key_value_lookup",
    "load_records",
    "oracle_classify",
    "oracle_lookup",
    "oracle_match",
    "oracle_topk",
    "WORKLOAD_CLASSES",
    "PROGRAM_WORKLOADS",
    "WorkloadComparison",
    "WorkloadProgram",
    "WorkloadServiceRun",
    "Fig6Table",
    "generate_inputs",
    "make_workloads",
    "run_comparison",
    "run_fig6",
    "run_workload",
]
