"""The paper's eight data-intensive bulk-bitwise applications (§VI):
CRC8, XOR Cipher, Set Union/Intersection/Difference, Masked
Initialization, Bitmap Index Query, and BNN Inference — each with a
technology-independent kernel and a numpy reference for bit-exact
verification.
"""

from repro.workloads.base import Workload, WorkloadIO, WorkloadResult
from repro.workloads.bitmap_index import BitmapIndexQuery
from repro.workloads.bnn import BnnInference
from repro.workloads.crc8 import Crc8, crc8_reference
from repro.workloads.masked_init import MaskedInit
from repro.workloads.runner import (
    WORKLOAD_CLASSES,
    Fig6Table,
    WorkloadComparison,
    make_workloads,
    run_comparison,
    run_fig6,
)
from repro.workloads.set_ops import SetDifference, SetIntersection, SetUnion
from repro.workloads.xor_cipher import XorCipher

__all__ = [
    "Workload",
    "WorkloadIO",
    "WorkloadResult",
    "Crc8",
    "crc8_reference",
    "XorCipher",
    "SetUnion",
    "SetIntersection",
    "SetDifference",
    "MaskedInit",
    "BitmapIndexQuery",
    "BnnInference",
    "WORKLOAD_CLASSES",
    "WorkloadComparison",
    "Fig6Table",
    "make_workloads",
    "run_comparison",
    "run_fig6",
]
