"""Bitmap set operations: union, intersection, difference.

Sets are bitmaps over a universe of elements (one bit per element); the
three operations are single bulk OR / AND / AND-NOT sweeps — the purest
form of the paper's row-parallel MINORITY computation (the AND-NOT's
inversion is where FeRAM's free inverting read shows up).

Each kernel is expressed as a one-line query for the expression
compiler; for these single-op sweeps the compiled plan and the naive
chain coincide (one native primitive, plus the honest materialization
NOT for the difference), so the Fig. 6 numbers are unchanged —
``compiled=False`` runs the handwritten chain for comparison.
"""

from __future__ import annotations

import numpy as np

from repro.arch.engine import BulkEngine
from repro.arch.expr import compile_for, naive_run, parse
from repro.workloads.base import Workload, WorkloadIO

__all__ = ["SetUnion", "SetIntersection", "SetDifference",
           "service_queries"]


def service_queries(a: str = "set_a", b: str = "set_b") -> list[str]:
    """Set-algebra query mix for the serving benchmarks.

    Union / intersection / difference / symmetric difference over two
    bitmap sets — the single-sweep kernels of this module expressed as
    service queries (used by the ``service_scale`` benchmark).
    """
    return [f"{a} | {b}", f"{a} & {b}", f"{a} & ~{b}", f"{a} ^ {b}"]


class _SetOperation(Workload):
    """Common two-bitmap structure: the kernel is a compiled query."""

    #: query over the two set bitmaps; set by subclasses
    QUERY = ""
    #: name of the output vector
    OUTPUT = ""

    def __init__(self, n_bytes: int, *, compiled: bool = True) -> None:
        super().__init__(n_bytes)
        self.compiled = compiled

    def execute(self, engine: BulkEngine, io: WorkloadIO) -> None:
        n_bits = self.vector_bits(0.5)
        set_a = io.input("set_a", n_bits, density=0.3)
        set_b = io.input("set_b", n_bits, density=0.3, group_with=set_a)
        columns = {"set_a": set_a, "set_b": set_b}
        expr = parse(self.QUERY)
        if self.compiled:
            out = compile_for(engine, expr).run(engine, columns,
                                                self.OUTPUT)
        else:
            out = naive_run(expr, engine, columns, self.OUTPUT)
        io.output(self.OUTPUT, out)
        engine.free(set_a, set_b, out)


class SetUnion(_SetOperation):
    name = "set_union"
    title = "Set Union"
    QUERY = "set_a | set_b"
    OUTPUT = "union"

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        return {"union": inputs["set_a"] | inputs["set_b"]}


class SetIntersection(_SetOperation):
    name = "set_intersection"
    title = "Set Intersection"
    QUERY = "set_a & set_b"
    OUTPUT = "intersection"

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        return {"intersection": inputs["set_a"] & inputs["set_b"]}


class SetDifference(_SetOperation):
    name = "set_difference"
    title = "Set Difference"
    QUERY = "set_a & ~set_b"
    OUTPUT = "difference"

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        return {"difference": inputs["set_a"] & (1 - inputs["set_b"])}
