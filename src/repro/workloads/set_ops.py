"""Bitmap set operations: union, intersection, difference.

Sets are bitmaps over a universe of elements (one bit per element); the
three operations are single bulk OR / AND / AND-NOT sweeps — the purest
form of the paper's row-parallel MINORITY computation (the AND-NOT's
inversion is where FeRAM's free inverting read shows up).
"""

from __future__ import annotations

import numpy as np

from repro.arch.engine import BulkEngine
from repro.workloads.base import Workload, WorkloadIO

__all__ = ["SetUnion", "SetIntersection", "SetDifference"]


class _SetOperation(Workload):
    """Common two-bitmap structure."""

    def _bitmaps(self, engine: BulkEngine, io: WorkloadIO):
        n_bits = self.vector_bits(0.5)
        set_a = io.input("set_a", n_bits, density=0.3)
        set_b = io.input("set_b", n_bits, density=0.3, group_with=set_a)
        return set_a, set_b


class SetUnion(_SetOperation):
    name = "set_union"
    title = "Set Union"

    def execute(self, engine: BulkEngine, io: WorkloadIO) -> None:
        set_a, set_b = self._bitmaps(engine, io)
        union = engine.or_(set_a, set_b, "union")
        io.output("union", union)
        engine.free(set_a, set_b, union)

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        return {"union": inputs["set_a"] | inputs["set_b"]}


class SetIntersection(_SetOperation):
    name = "set_intersection"
    title = "Set Intersection"

    def execute(self, engine: BulkEngine, io: WorkloadIO) -> None:
        set_a, set_b = self._bitmaps(engine, io)
        inter = engine.and_(set_a, set_b, "intersection")
        io.output("intersection", inter)
        engine.free(set_a, set_b, inter)

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        return {"intersection": inputs["set_a"] & inputs["set_b"]}


class SetDifference(_SetOperation):
    name = "set_difference"
    title = "Set Difference"

    def execute(self, engine: BulkEngine, io: WorkloadIO) -> None:
        set_a, set_b = self._bitmaps(engine, io)
        diff = engine.andnot(set_a, set_b, "difference")
        io.output("difference", diff)
        engine.free(set_a, set_b, diff)

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        return {"difference": inputs["set_a"] & (1 - inputs["set_b"])}
