"""Workload framework for the paper's §VI evaluation.

Each of the eight applications is a :class:`Workload` with three faces:

* ``execute(engine, io)`` — the bulk-bitwise kernel, written against the
  technology-independent engine API (so the same kernel runs on DRAM/
  Ambit and 2T-nC FeRAM and is charged each technology's costs);
* ``reference(inputs)`` — a plain-numpy ground truth;
* verification — in functional mode every output vector is compared
  bit-exactly against the reference.

Counting mode runs the same kernel code with placeholder vectors (no
payloads) for the 1 GB-scale energy/cycle accounting of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.bank import BitVector
from repro.arch.engine import BulkEngine
from repro.errors import WorkloadError

__all__ = ["WorkloadIO", "WorkloadResult", "Workload"]


class WorkloadIO:
    """Mediates kernel inputs/outputs for functional vs counting runs.

    ``charge_io=False`` (default) models the PiM evaluation setting:
    operands are already resident in memory and results stay there, so
    only the bulk-bitwise execution is measured — the paper's Fig. 6
    accounting.  ``charge_io=True`` adds the host row writes/reads.
    """

    def __init__(self, engine: BulkEngine,
                 rng: np.random.Generator | None = None, *,
                 charge_io: bool = False) -> None:
        self.engine = engine
        self.rng = rng or np.random.default_rng(0)
        self.charge_io = charge_io
        self.inputs: dict[str, np.ndarray] = {}
        self.outputs: dict[str, np.ndarray | None] = {}

    def input(self, name: str, n_bits: int, *,
              group_with: BitVector | None = None,
              density: float = 0.5) -> BitVector:
        """Declare an input vector; random bits with the given 1-density
        are generated (and remembered) in functional mode."""
        if n_bits <= 0:
            raise WorkloadError(f"input {name!r} must have positive width")
        if self.engine.functional:
            bits = (self.rng.random(n_bits) < density).astype(np.uint8)
            self.inputs[name] = bits
            return self.engine.load(bits, name, group_with=group_with,
                                    charge=self.charge_io)
        vector = self.engine.allocate(n_bits, name, group_with=group_with)
        if self.charge_io:
            from repro.arch.commands import Command, CommandType
            self.engine.stats.record(
                self.engine.spec,
                Command(CommandType.ROW_WRITE, repeat=vector.n_rows))
        return vector

    def input_bits(self, name: str, bits: np.ndarray, *,
                   group_with: BitVector | None = None) -> BitVector:
        """Declare an input with explicit content (functional mode)."""
        bits = np.asarray(bits, dtype=np.uint8)
        if self.engine.functional:
            self.inputs[name] = bits
            return self.engine.load(bits, name, group_with=group_with,
                                    charge=self.charge_io)
        return self.input(name, bits.size, group_with=group_with)

    def output(self, name: str, vector: BitVector) -> None:
        """Declare a kernel output (captures bits; results stay
        resident unless ``charge_io``)."""
        self.outputs[name] = self.engine.store(vector,
                                               charge=self.charge_io)


@dataclass
class WorkloadResult:
    """Outcome of one (workload, technology) run."""

    workload: str
    technology: str
    n_bytes: int
    energy_j: float
    cycles: int
    wall_time_s: float
    verified: bool | None
    detail: dict = field(default_factory=dict)

    @property
    def energy_nj(self) -> float:
        return self.energy_j * 1e9


class Workload:
    """Base class for the eight evaluated applications."""

    #: short identifier used in tables
    name = "base"
    #: paper display name
    title = "Base workload"

    def __init__(self, n_bytes: int) -> None:
        if n_bytes <= 0:
            raise WorkloadError("workload size must be positive")
        self.n_bytes = n_bytes

    # ------------------------------------------------------------------
    # kernel interface
    # ------------------------------------------------------------------
    def execute(self, engine: BulkEngine, io: WorkloadIO) -> None:
        raise NotImplementedError

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def as_program(self, *, seed: int = 0):
        """The workload as a multi-statement service program.

        Dataflow workloads (BNN, CRC8, XOR cipher, masked init)
        override this to return a :class:`~repro.workloads.programs.
        WorkloadProgram` executable by ``BitwiseService.run_program``;
        the rest raise.
        """
        raise WorkloadError(
            f"workload {self.name!r} has no program form")

    # ------------------------------------------------------------------
    def run(self, engine: BulkEngine, *, seed: int = 0,
            charge_io: bool = False) -> WorkloadResult:
        """Execute on the given engine; verify outputs in functional
        mode; return the stats ledger."""
        io = WorkloadIO(engine, np.random.default_rng(seed),
                        charge_io=charge_io)
        self.execute(engine, io)
        stats = engine.finalize()
        verified: bool | None = None
        if engine.functional:
            expected = self.reference(io.inputs)
            missing = set(expected) - set(io.outputs)
            if missing:
                raise WorkloadError(
                    f"{self.name}: kernel produced no output(s) {missing}")
            verified = True
            for key, ref in expected.items():
                got = io.outputs[key]
                if got is None or not np.array_equal(
                        got[: ref.size], ref.astype(np.uint8)):
                    verified = False
        return WorkloadResult(
            workload=self.name,
            technology=engine.spec.technology,
            n_bytes=self.n_bytes,
            energy_j=stats.total_energy_j,
            cycles=stats.total_cycles,
            wall_time_s=stats.wall_time_s(engine.spec),
            verified=verified,
            detail=stats.summary(),
        )

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def vector_bits(self, fraction: float = 1.0) -> int:
        """Bits for a vector holding ``fraction`` of the workload data,
        rounded up to a whole number of 64-bit words."""
        bits = int(self.n_bytes * 8 * fraction)
        return max(64, (bits + 63) // 64 * 64)
