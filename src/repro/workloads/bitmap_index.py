"""Bitmap index query: conjunctive/disjunctive predicate over bitmaps.

A database table keeps one bitmap per attribute value (bitmap index);
answering ``(c0 AND c1 AND NOT c2) OR (c3 AND c4 AND c5)`` is a handful
of bulk bitwise sweeps over million-row bitmaps.  This is the workload
the paper's thermal study (§VII) executes.

The kernel is expressed as a query for the expression compiler
(:mod:`repro.arch.expr`): the compiled plan answers the predicate in
fewer native primitives than the handwritten op chain (the parity
planner removes the flag-materialization NOTs the chain pays on FeRAM
— 6 vs 7 ACPs per row).  ``compiled=False`` keeps the naive chain for
before/after comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.arch.engine import BulkEngine
from repro.arch.expr import compile_for, naive_run, parse
from repro.workloads.base import Workload, WorkloadIO

__all__ = ["BitmapIndexQuery", "service_queries"]

#: number of attribute bitmaps the query touches
N_COLUMNS = 6

#: the evaluated predicate (Fig. 6 / §VII workload)
QUERY = "(c0 & c1 & ~c2) | (c3 & c4 & c5)"


def service_queries(columns: list[str] | None = None) -> list[str]:
    """Bitmap-index predicate mix for the serving benchmarks.

    The Fig. 6 conjunctive/disjunctive predicate plus CSE-heavy and
    majority variants over the same attribute bitmaps — the query
    shapes a bitmap-indexed table answers under real traffic.  Used by
    the ``service_scale`` benchmark and the analytics example.
    """
    c = list(columns) if columns is not None \
        else [f"c{k}" for k in range(N_COLUMNS)]
    if len(c) < N_COLUMNS:
        raise ValueError(f"need {N_COLUMNS} columns, got {len(c)}")
    return [
        f"({c[0]} & {c[1]} & ~{c[2]}) | ({c[3]} & {c[4]} & {c[5]})",
        f"({c[0]} & {c[1]} & ~{c[2]}) | ({c[0]} & {c[1]} & {c[3]})",
        f"maj({c[0]}, {c[1]}, {c[2]}) & ~{c[5]}",
        f"sel({c[0]}, {c[1]}, {c[2]}) | ({c[3]} & ~{c[4]})",
    ]


class BitmapIndexQuery(Workload):
    name = "bitmap_index"
    title = "Bitmap Index Query"

    def __init__(self, n_bytes: int, *, compiled: bool = True) -> None:
        super().__init__(n_bytes)
        self.compiled = compiled

    def execute(self, engine: BulkEngine, io: WorkloadIO) -> None:
        n_bits = self.vector_bits(1.0 / N_COLUMNS)
        columns = {}
        first = None
        for k in range(N_COLUMNS):
            col = io.input(f"c{k}", n_bits, density=0.4,
                           group_with=first)
            first = first or col
            columns[f"c{k}"] = col
        expr = parse(QUERY)
        if self.compiled:
            hits = compile_for(engine, expr).run(engine, columns, "hits")
        else:
            hits = naive_run(expr, engine, columns, "hits")
        io.output("hits", hits)
        engine.free(hits, *columns.values())

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        c = [inputs[f"c{k}"] for k in range(N_COLUMNS)]
        left = c[0] & c[1] & (1 - c[2])
        right = c[3] & c[4] & c[5]
        return {"hits": (left | right).astype(np.uint8)}
