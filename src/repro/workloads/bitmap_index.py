"""Bitmap index query: conjunctive/disjunctive predicate over bitmaps.

A database table keeps one bitmap per attribute value (bitmap index);
answering ``(c0 AND c1 AND NOT c2) OR (c3 AND c4)`` is a handful of bulk
bitwise sweeps over million-row bitmaps.  This is the workload the
paper's thermal study (§VII) executes.
"""

from __future__ import annotations

import numpy as np

from repro.arch.engine import BulkEngine
from repro.workloads.base import Workload, WorkloadIO

__all__ = ["BitmapIndexQuery"]

#: number of attribute bitmaps the query touches
N_COLUMNS = 6


class BitmapIndexQuery(Workload):
    name = "bitmap_index"
    title = "Bitmap Index Query"

    def execute(self, engine: BulkEngine, io: WorkloadIO) -> None:
        n_bits = self.vector_bits(1.0 / N_COLUMNS)
        cols = []
        first = None
        for k in range(N_COLUMNS):
            col = io.input(f"col{k}", n_bits, density=0.4,
                           group_with=first)
            first = first or col
            cols.append(col)
        # (c0 AND c1 AND NOT c2) OR (c3 AND c4 AND c5)
        t01 = engine.and_(cols[0], cols[1])
        left = engine.andnot(t01, cols[2])
        t34 = engine.and_(cols[3], cols[4])
        right = engine.and_(t34, cols[5])
        hits = engine.or_(left, right, "hits")
        io.output("hits", hits)
        engine.free(t01, left, t34, right, hits, *cols)

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        c = [inputs[f"col{k}"] for k in range(N_COLUMNS)]
        left = c[0] & c[1] & (1 - c[2])
        right = c[3] & c[4] & c[5]
        return {"hits": (left | right).astype(np.uint8)}
