"""CRC8 checksums over millions of records, bit-sliced.

Each lane (memory column) carries one record; the CRC state is eight
bit-planes updated with the classic MSB-first feedback recurrence for
polynomial ``x^8 + x^2 + x + 1`` (0x07):

    fb      = crc[7] ⊕ data_bit
    crc     = crc << 1          (plane rename — free row addressing)
    crc[0]  = fb
    crc[1] ⊕= fb
    crc[2] ⊕= fb

Three bulk XORs per input bit; the shift costs nothing.  This is the
XOR-dominated end of the paper's workload mix.
"""

from __future__ import annotations

import numpy as np

from repro.arch.engine import BulkEngine
from repro.arch.expr import Col, Const, Expr, Xor
from repro.arch.program import ProgramBuilder
from repro.workloads.base import Workload, WorkloadIO
from repro.workloads.programs import WorkloadProgram

__all__ = ["Crc8", "crc8_reference"]

CRC_POLY = 0x07
CRC_BITS = 8


def crc8_reference(records: np.ndarray) -> np.ndarray:
    """Table-free CRC8 (poly 0x07, init 0) over a (n_records, n_bytes)
    uint8 array — the independent ground truth."""
    records = np.asarray(records, dtype=np.uint8)
    crc = np.zeros(records.shape[0], dtype=np.uint16)
    for byte_col in range(records.shape[1]):
        crc ^= records[:, byte_col].astype(np.uint16)
        for _ in range(8):
            msb = (crc >> 7) & 1
            crc = ((crc << 1) & 0xFF) ^ (msb * CRC_POLY)
    return crc.astype(np.uint8)


class Crc8(Workload):
    name = "crc8"
    title = "CRC8"

    #: bytes per record (the paper-scale run uses 1 GB / 64 B ≈ 16 M lanes)
    record_bytes = 64

    def __init__(self, n_bytes: int, *, record_bytes: int | None = None,
                 ) -> None:
        super().__init__(n_bytes)
        if record_bytes is not None:
            self.record_bytes = record_bytes

    @property
    def n_lanes(self) -> int:
        lanes = self.n_bytes // self.record_bytes
        return max(64, lanes // 64 * 64)

    def execute(self, engine: BulkEngine, io: WorkloadIO) -> None:
        lanes = self.n_lanes
        # CRC state planes, MSB at index 7; initialized to zero and
        # co-located so TBAs need no relocations.
        anchor = engine.constant(lanes, 0, "crc0")
        crc = [anchor] + [engine.constant(lanes, 0, f"crc{k}",
                                          group_with=anchor)
                          for k in range(1, CRC_BITS)]
        for byte_idx in range(self.record_bytes):
            for bit in range(7, -1, -1):  # MSB-first within each byte
                data = io.input(f"byte{byte_idx}_bit{bit}", lanes,
                                group_with=anchor)
                fb = engine.xor(crc[7], data, "fb")
                engine.free(data, crc[7])
                new_crc1 = engine.xor(crc[0], fb, "c1")
                new_crc2 = engine.xor(crc[1], fb, "c2")
                engine.free(crc[0], crc[1])
                # Shift: planes 3..7 take old 2..6; taps replace 0..2.
                crc = [fb, new_crc1, new_crc2] + crc[2:7]
        for k in range(CRC_BITS):
            io.output(f"crc{k}", crc[k])
        engine.free(*crc)

    def as_program(self, *, seed: int = 0) -> WorkloadProgram:
        """The feedback recurrence as a program: three XOR statements
        per input bit; the plane shift stays a builder-level rename
        (free, exactly like the engine kernel's row renaming), and the
        zero-initialized state planes are ``Const(0)`` expressions the
        compiler folds out of the first round entirely.
        """
        builder = ProgramBuilder()
        planes: list[Expr] = [Const(0)] * CRC_BITS
        for byte_idx in range(self.record_bytes):
            for bit in range(7, -1, -1):  # MSB-first within each byte
                data = Col(f"byte{byte_idx}_bit{bit}")
                fb = builder.emit("fb", Xor(planes[7], data))
                new_crc1 = builder.emit("c1", Xor(planes[0], fb))
                new_crc2 = builder.emit("c2", Xor(planes[1], fb))
                planes = [fb, new_crc1, new_crc2] + planes[2:7]
        outputs = []
        for k in range(CRC_BITS):
            builder.let(f"crc{k}", planes[k])
            outputs.append(f"crc{k}")
        return WorkloadProgram(self.name, self.n_lanes,
                               builder.build(outputs), self.reference)

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        lanes = self.n_lanes
        records = np.zeros((lanes, self.record_bytes), dtype=np.uint8)
        for byte_idx in range(self.record_bytes):
            for bit in range(8):
                plane = inputs[f"byte{byte_idx}_bit{bit}"]
                records[:, byte_idx] |= (plane.astype(np.uint8) << bit)
        crc = crc8_reference(records)
        return {f"crc{k}": ((crc >> k) & 1).astype(np.uint8)
                for k in range(CRC_BITS)}
