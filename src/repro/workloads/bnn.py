"""Binarized neural network (BNN) inference: XNOR + popcount + sign.

One binary dense layer evaluated across millions of lanes (input
positions).  Per output neuron the binary dot product is

    out_j = popcount_k( XNOR(x_k, w_jk) ) >= T

Weights are per-neuron constants, so the XNOR against a known weight bit
is a *free* complement-flag flip (exactly the trick QNRO's inverting read
makes natural); the real bulk work is the popcount adder tree (XOR/MAJ
full adders) and the threshold comparison.
"""

from __future__ import annotations

import numpy as np

from repro.arch.bitwise import greater_equal_const, popcount
from repro.arch.engine import BulkEngine
from repro.arch.expr import Col, Expr, Not
from repro.arch.program import ProgramBuilder
from repro.workloads.base import Workload, WorkloadIO
from repro.workloads.programs import (
    WorkloadProgram,
    emit_greater_equal_const,
    emit_popcount,
)

__all__ = ["BnnInference"]


class BnnInference(Workload):
    name = "bnn"
    title = "BNN Inference"

    #: input features per lane and output neurons
    n_features = 16
    n_neurons = 4

    def __init__(self, n_bytes: int, *, n_features: int | None = None,
                 n_neurons: int | None = None) -> None:
        super().__init__(n_bytes)
        if n_features is not None:
            self.n_features = n_features
        if n_neurons is not None:
            self.n_neurons = n_neurons

    @property
    def n_lanes(self) -> int:
        lanes = self.n_bytes * 8 // self.n_features
        return max(64, lanes // 64 * 64)

    @property
    def threshold(self) -> int:
        return self.n_features // 2

    def execute(self, engine: BulkEngine, io: WorkloadIO) -> None:
        lanes = self.n_lanes
        first = None
        acts = []
        for k in range(self.n_features):
            act = io.input(f"x{k}", lanes, group_with=first)
            first = first or act
            acts.append(act)
        weights = io.rng.integers(
            0, 2, (self.n_neurons, self.n_features), dtype=np.uint8)
        io.inputs["weights"] = weights.reshape(-1)
        for j in range(self.n_neurons):
            # XNOR with a constant weight bit: w=1 → x, w=0 → NOT x
            # (free flag flips, undone after the popcount).
            flipped = [k for k in range(self.n_features)
                       if weights[j, k] == 0]
            for k in flipped:
                engine.not_(acts[k])
            counts = popcount(engine, acts)
            for k in flipped:
                engine.not_(acts[k])
            out = greater_equal_const(engine, counts, self.threshold)
            io.output(f"neuron{j}", out)
            engine.free(out, *counts)
        engine.free(*acts)

    def as_program(self, *, seed: int = 0) -> WorkloadProgram:
        """The dense layer as one program: per neuron, XNOR against the
        constant weight row (a free expression-level complement),
        popcount adder tree, and the ``>= T`` threshold carry.

        Neurons whose weight rows agree on a prefix of features share
        their partial-count sub-trees through the program compiler's
        cross-statement CSE — sharing the engine-loop kernel cannot
        express.
        """
        rng = np.random.default_rng(seed)
        weights = rng.integers(
            0, 2, (self.n_neurons, self.n_features), dtype=np.uint8)
        builder = ProgramBuilder()
        outputs = []
        for j in range(self.n_neurons):
            # XNOR with a constant weight bit: w=1 -> x, w=0 -> NOT x.
            planes: list[Expr] = [
                Col(f"x{k}") if weights[j, k] else Not(Col(f"x{k}"))
                for k in range(self.n_features)
            ]
            counts = emit_popcount(builder, planes, f"n{j}")
            hit = emit_greater_equal_const(
                builder, counts, self.threshold, f"n{j}_ge")
            builder.let(f"neuron{j}", hit)
            outputs.append(f"neuron{j}")
        program = builder.build(outputs)

        def reference(inputs: dict[str, np.ndarray],
                      ) -> dict[str, np.ndarray]:
            return self.reference(
                {**inputs, "weights": weights.reshape(-1)})

        return WorkloadProgram(self.name, self.n_lanes, program,
                               reference)

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        lanes = self.n_lanes
        weights = inputs["weights"].reshape(self.n_neurons, self.n_features)
        acts = np.stack([inputs[f"x{k}"] for k in range(self.n_features)])
        out = {}
        for j in range(self.n_neurons):
            xnor = 1 - (acts ^ weights[j][:, None])
            counts = xnor.sum(axis=0)
            out[f"neuron{j}"] = (counts >= self.threshold).astype(np.uint8)
        return out
