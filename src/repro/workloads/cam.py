"""CAM search scenarios over the bulk-bitwise service.

Three applications of the ``match`` primitive (exact and ternary
content-addressable search), each with a plain-numpy oracle for
bit-exact differential testing:

* **key-value lookup** — records stored column-per-bit-position; an
  exact match over the key columns returns the hit rows, whose value
  columns are then read out host-side;
* **packet / rule classification** — a TCAM-style ACL: ordered ternary
  rules (key + care mask) matched first-match-wins over packet field
  columns;
* **Hamming nearest neighbor** — the BNN retrieval trick: a ternary
  match with ``r`` key positions masked hits exactly the rows within
  Hamming distance ``r`` at those positions, so the union over all
  C(w, r) position subsets is the radius-``r`` ball.  Expanding
  ``r = 0, 1, ...`` until at least ``k`` rows are inside yields an
  exact top-k (with ties at the final radius) using only CAM
  searches, and the per-search energies from the closed-form ledger
  sum to the retrieval cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.arch.expr import _parse_key_bits
from repro.errors import QueryError

__all__ = [
    "TopKResult", "classify_packets", "hamming_topk",
    "key_value_lookup", "load_records", "oracle_classify",
    "oracle_lookup", "oracle_match", "oracle_topk",
]


def load_records(service, records, prefix="f", *, tenant=None):
    """Install a record matrix column-per-bit-position.

    ``records`` is ``(n_records, width)`` 0/1; column ``{prefix}{j}``
    holds bit *j* of every record (the service table width must equal
    ``n_records``).  Returns the column names in bit order.
    """
    records = np.asarray(records, dtype=np.uint8)
    if records.ndim != 2:
        raise QueryError("records must be a (n_records, width) matrix")
    names = [f"{prefix}{j}" for j in range(records.shape[1])]
    for j, name in enumerate(names):
        service.create_column(name, records[:, j], tenant=tenant)
    return names


def oracle_match(records, key, mask=None) -> np.ndarray:
    """Plain-numpy ternary match: 0/1 hit vector over record rows."""
    records = np.asarray(records, dtype=np.uint8)
    bits, care = _parse_key_bits(key, records.shape[1], what="key")
    if mask is not None:
        mbits, _ = _parse_key_bits(mask, records.shape[1],
                                   what="mask", allow_x=False)
        care = tuple(c & m for c, m in zip(care, mbits))
    out = np.ones(records.shape[0], dtype=np.uint8)
    for j, (bit, cared) in enumerate(zip(bits, care)):
        if cared:
            out &= records[:, j] ^ (1 - bit)
    return out


# ----------------------------------------------------------------------
# key-value lookup
# ----------------------------------------------------------------------
def key_value_lookup(service, key_cols, value_cols, key, *,
                     tenant=None):
    """Exact-match lookup of ``key`` against the key column group.

    Returns ``(rows, values, result)``: hit row indices, each hit's
    value word (value columns little-endian: column *j* is bit *j*),
    and the underlying :class:`QueryResult` (count, energy, cycles).
    """
    result = service.match(key_cols, key, tenant=tenant)
    rows = np.flatnonzero(np.asarray(result.bits)).astype(np.int64)
    values = np.zeros(rows.size, dtype=np.int64)
    for j, name in enumerate(value_cols):
        bits = np.asarray(service.column_bits(name, tenant=tenant))
        values |= bits[rows].astype(np.int64) << j
    return rows, values, result


def oracle_lookup(keys, values, key):
    """Numpy oracle for :func:`key_value_lookup`.

    ``keys``/``values`` are ``(n, w)`` record matrices; returns the
    same ``(rows, value_words)`` pair.
    """
    hits = oracle_match(keys, key)
    rows = np.flatnonzero(hits).astype(np.int64)
    values = np.asarray(values, dtype=np.int64)
    weights = np.int64(1) << np.arange(values.shape[1], dtype=np.int64)
    return rows, (values[rows] * weights).sum(axis=1)


# ----------------------------------------------------------------------
# packet / rule classification
# ----------------------------------------------------------------------
def classify_packets(service, field_cols, rules, *, tenant=None):
    """First-match-wins ternary rule classification (TCAM ACL).

    ``rules`` is an ordered sequence of keys or ``(key, mask)`` pairs
    over the field columns.  Returns ``(assigned, results)`` where
    ``assigned[i]`` is the index of the first rule matching row *i*
    (-1 when none do) and ``results`` holds each rule's QueryResult.
    """
    assigned = np.full(service.n_bits, -1, dtype=np.int64)
    results = []
    for index, rule in enumerate(rules):
        key, mask = rule if isinstance(rule, tuple) else (rule, None)
        result = service.match(field_cols, key, mask, tenant=tenant)
        results.append(result)
        hits = np.asarray(result.bits).astype(bool)
        assigned = np.where((assigned < 0) & hits, index, assigned)
    return assigned, results


def oracle_classify(records, rules) -> np.ndarray:
    """Numpy oracle for :func:`classify_packets`."""
    records = np.asarray(records, dtype=np.uint8)
    assigned = np.full(records.shape[0], -1, dtype=np.int64)
    for index, rule in enumerate(rules):
        key, mask = rule if isinstance(rule, tuple) else (rule, None)
        hits = oracle_match(records, key, mask).astype(bool)
        assigned = np.where((assigned < 0) & hits, index, assigned)
    return assigned


# ----------------------------------------------------------------------
# Hamming nearest neighbor (BNN retrieval)
# ----------------------------------------------------------------------
@dataclass
class TopKResult:
    """Exact radius-bounded top-k: all rows within ``radius`` of the
    key (ties included), with exact distances."""

    rows: np.ndarray
    distances: np.ndarray
    radius: int
    searches: int
    energy_j: float


def hamming_topk(service, cols, key, k, *, tenant=None,
                 max_radius=None) -> TopKResult:
    """Top-k nearest rows to ``key`` via iterative threshold match.

    Radius ``r`` is explored as the union of masked matches over all
    C(width, r) position subsets; a row first appears at exactly its
    Hamming distance, so distances are exact.  Stops at the first
    radius holding at least ``k`` rows (or at ``max_radius``/the key
    width).  ``energy_j`` sums the per-search energies charged by the
    closed-form plan ledger.
    """
    cols = list(cols)
    width = len(cols)
    bits, care = _parse_key_bits(key, width, what="key")
    if not all(care):
        raise QueryError("hamming_topk needs a fully-specified key")
    limit = width if max_radius is None else min(int(max_radius), width)
    found: dict[int, int] = {}
    searches = 0
    energy = 0.0
    radius = 0
    for radius in range(limit + 1):
        for positions in itertools.combinations(range(width), radius):
            mask = [0 if j in positions else 1 for j in range(width)]
            result = service.match(cols, bits, mask, tenant=tenant)
            searches += 1
            energy += result.energy_j
            for row in np.flatnonzero(np.asarray(result.bits)):
                found.setdefault(int(row), radius)
        if len(found) >= k:
            break
    rows = np.array(sorted(found), dtype=np.int64)
    distances = np.array([found[int(row)] for row in rows],
                         dtype=np.int64)
    return TopKResult(rows, distances, radius, searches, energy)


def oracle_topk(records, key, k, *, max_radius=None):
    """Numpy oracle for :func:`hamming_topk`: ``(rows, distances,
    radius)`` for the smallest radius holding at least ``k`` rows."""
    records = np.asarray(records, dtype=np.uint8)
    bits, care = _parse_key_bits(key, records.shape[1], what="key")
    if not all(care):
        raise QueryError("oracle_topk needs a fully-specified key")
    distances = (records ^ np.asarray(bits, dtype=np.uint8)
                 ).sum(axis=1, dtype=np.int64)
    limit = records.shape[1] if max_radius is None \
        else min(int(max_radius), records.shape[1])
    radius = 0
    for radius in range(limit + 1):
        if int((distances <= radius).sum()) >= k:
            break
    rows = np.flatnonzero(distances <= radius).astype(np.int64)
    return rows, distances[rows], radius
