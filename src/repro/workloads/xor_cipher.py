"""XOR stream cipher: ``ciphertext = plaintext ⊕ keystream``.

The classic bulk-bitwise workload (one row-parallel XOR over the whole
dataset); the keystream is laid out alongside the plaintext so 2T-nC
FeRAM computes fully in place.
"""

from __future__ import annotations

import numpy as np

from repro.arch.engine import BulkEngine
from repro.arch.program import Program
from repro.workloads.base import Workload, WorkloadIO
from repro.workloads.programs import WorkloadProgram

__all__ = ["XorCipher"]


class XorCipher(Workload):
    name = "xor_cipher"
    title = "XOR Cipher"

    def as_program(self, *, seed: int = 0) -> WorkloadProgram:
        program = Program([("ciphertext", "plaintext ^ keystream")])
        return WorkloadProgram(self.name, self.vector_bits(0.5),
                               program, self.reference)

    def execute(self, engine: BulkEngine, io: WorkloadIO) -> None:
        n_bits = self.vector_bits(0.5)  # half data, half keystream
        plaintext = io.input("plaintext", n_bits)
        keystream = io.input("keystream", n_bits, group_with=plaintext)
        ciphertext = engine.xor(plaintext, keystream, "ciphertext")
        io.output("ciphertext", ciphertext)
        engine.free(plaintext, keystream, ciphertext)

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        return {"ciphertext": inputs["plaintext"] ^ inputs["keystream"]}
