"""Workloads as multi-statement programs for the service backends.

The §VI kernels were originally written as imperative loops of
interpreted :class:`~repro.arch.engine.BulkEngine` calls; this module
re-expresses the dataflow workloads as :class:`~repro.arch.program.
Program` objects so they run through :meth:`~repro.service.service.
BitwiseService.run_program` — compiled once, executed by the columnar
vector backend as whole-matrix numpy kernels, and provably equivalent
to the engine replay via the differential test harness.

The expression-level arithmetic builders here mirror the bit-sliced
adder trees of :mod:`repro.arch.bitwise` (LSB-first planes, full adders
from XOR/MAJ, shifts as renames), but as *statements over named
intermediates*: the program compiler then folds constants (zero
padding, threshold planes), shares repeated sub-terms across
statements, and plans complement-flag parities — none of which the
handwritten engine loops can do.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.arch.expr import And, Const, Expr, Maj, Xor
from repro.arch.program import Program, ProgramBuilder
from repro.errors import WorkloadError

__all__ = [
    "WorkloadProgram", "emit_ripple_add", "emit_add_constant",
    "emit_popcount", "emit_greater_equal_const", "generate_inputs",
]


@dataclass
class WorkloadProgram:
    """A workload lowered to a program plus its verification contract.

    ``reference`` maps the generated input columns (name → flat 0/1
    array) to the expected output bits per program output name.
    """

    workload: str
    n_lanes: int
    program: Program
    reference: Callable[[dict[str, np.ndarray]], dict[str, np.ndarray]]
    densities: dict[str, float] = field(default_factory=dict)

    @property
    def input_columns(self) -> tuple[str, ...]:
        return self.program.cols()


def generate_inputs(workload_program: WorkloadProgram, *,
                    seed: int = 0) -> dict[str, np.ndarray]:
    """Deterministic random input columns (one rng draw per column, in
    ``program.cols()`` order, honoring per-column densities)."""
    rng = np.random.default_rng(seed)
    inputs: dict[str, np.ndarray] = {}
    for name in workload_program.input_columns:
        density = workload_program.densities.get(name, 0.5)
        inputs[name] = (rng.random(workload_program.n_lanes)
                        < density).astype(np.uint8)
    return inputs


# ----------------------------------------------------------------------
# expression-level bit-sliced arithmetic
# ----------------------------------------------------------------------
def emit_ripple_add(builder: ProgramBuilder, a: list[Expr],
                    b: list[Expr], prefix: str) -> list[Expr]:
    """Bit-sliced ``a + b``; returns ``max(len) + 1`` planes.

    One statement per sum and carry plane (named intermediates give
    per-statement cost attribution); shorter operands pad with
    ``Const(0)``, which the statement compiler folds away.
    """
    if not a or not b:
        raise WorkloadError("ripple add requires non-empty slices")
    width = max(len(a), len(b))
    padded_a = list(a) + [Const(0)] * (width - len(a))
    padded_b = list(b) + [Const(0)] * (width - len(b))
    out: list[Expr] = []
    carry: Expr | None = None
    for k, (pa, pb) in enumerate(zip(padded_a, padded_b)):
        if carry is None:
            total, carry_expr = Xor(pa, pb), And(pa, pb)
        else:
            total = Xor(pa, pb, carry)
            carry_expr = Maj(pa, pb, carry)
        out.append(builder.emit(f"{prefix}_s{k}", total))
        carry = builder.emit(f"{prefix}_c{k}", carry_expr)
    out.append(carry)
    return out


def emit_add_constant(builder: ProgramBuilder, a: list[Expr],
                      constant: int, prefix: str) -> list[Expr]:
    """Bit-sliced ``a + constant`` (constant broadcast to all lanes)."""
    if constant < 0:
        raise WorkloadError("constant must be non-negative")
    width = max(len(a), constant.bit_length())
    planes = [Const((constant >> k) & 1) for k in range(width)]
    return emit_ripple_add(builder, a, planes, prefix)


def emit_popcount(builder: ProgramBuilder, bits: list[Expr],
                  prefix: str) -> list[Expr]:
    """Per-lane popcount of N 1-bit planes → bit-sliced count.

    Balanced adder tree, exactly like :func:`repro.arch.bitwise.
    popcount` but over expressions.
    """
    if not bits:
        raise WorkloadError("popcount requires at least one plane")
    queue: list[list[Expr]] = [[plane] for plane in bits]
    level = 0
    while len(queue) > 1:
        next_queue: list[list[Expr]] = []
        for i in range(0, len(queue) - 1, 2):
            next_queue.append(emit_ripple_add(
                builder, queue[i], queue[i + 1],
                f"{prefix}_l{level}a{i // 2}"))
        if len(queue) % 2:
            next_queue.append(queue[-1])
        queue = next_queue
        level += 1
    return queue[0]


def emit_greater_equal_const(builder: ProgramBuilder, a: list[Expr],
                             threshold: int, prefix: str) -> Expr:
    """Per-lane ``value(a) >= threshold`` as one plane.

    The carry-out of ``a + (2^w - threshold)`` — the same borrow trick
    as :func:`repro.arch.bitwise.greater_equal_const`.
    """
    if threshold < 0:
        raise WorkloadError("threshold must be non-negative")
    width = len(a)
    if threshold == 0:
        return Const(1)
    if threshold > (1 << width):
        return Const(0)
    complement = (1 << width) - threshold
    planes: list[Expr] = [Const((complement >> k) & 1)
                          for k in range(width)]
    total = emit_ripple_add(builder, a, planes, prefix)
    return total[-1]
