"""Fig. 6 driver: the eight workloads on DRAM vs 2T-nC FeRAM.

Produces the paper's comparison — per-workload energy and execution
cycles for both technologies plus the FeRAM-over-DRAM improvement
factors (paper headline: ≈2.5× lower energy, ≈2× fewer cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.primitives import make_engine
from repro.arch.spec import MemorySpec
from repro.errors import WorkloadError
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.bitmap_index import BitmapIndexQuery
from repro.workloads.bnn import BnnInference
from repro.workloads.crc8 import Crc8
from repro.workloads.masked_init import MaskedInit
from repro.workloads.set_ops import SetDifference, SetIntersection, SetUnion
from repro.workloads.xor_cipher import XorCipher

__all__ = ["WORKLOAD_CLASSES", "WorkloadComparison", "Fig6Table",
           "make_workloads", "run_comparison", "run_fig6"]

GIB = 1 << 30

#: the paper's eight applications, in its Fig. 6 order
WORKLOAD_CLASSES: tuple[type[Workload], ...] = (
    Crc8,
    XorCipher,
    SetUnion,
    SetIntersection,
    SetDifference,
    MaskedInit,
    BitmapIndexQuery,
    BnnInference,
)


def make_workloads(n_bytes: int = GIB,
                   ) -> list[Workload]:
    """Instantiate all eight workloads at the given data size."""
    return [cls(n_bytes) for cls in WORKLOAD_CLASSES]


@dataclass
class WorkloadComparison:
    """One Fig. 6 row: a workload on both technologies."""

    workload: str
    title: str
    dram: WorkloadResult
    feram: WorkloadResult

    @property
    def energy_ratio(self) -> float:
        """DRAM energy / FeRAM energy (>1 means FeRAM wins)."""
        return self.dram.energy_j / self.feram.energy_j

    @property
    def cycle_ratio(self) -> float:
        """DRAM cycles / FeRAM cycles (>1 means FeRAM wins)."""
        return self.dram.cycles / self.feram.cycles


@dataclass
class Fig6Table:
    """All eight rows plus the aggregate factors."""

    rows: list[WorkloadComparison]

    def mean_energy_ratio(self) -> float:
        return float(np.exp(np.mean(
            [np.log(row.energy_ratio) for row in self.rows])))

    def mean_cycle_ratio(self) -> float:
        return float(np.exp(np.mean(
            [np.log(row.cycle_ratio) for row in self.rows])))

    def row(self, workload: str) -> WorkloadComparison:
        for row in self.rows:
            if row.workload == workload:
                return row
        raise WorkloadError(f"no workload {workload!r} in table")

    def format(self) -> str:
        lines = [
            f"{'workload':<18}{'DRAM E (mJ)':>12}{'FeRAM E (mJ)':>13}"
            f"{'E ratio':>9}{'DRAM cyc':>12}{'FeRAM cyc':>12}{'C ratio':>9}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.title:<18}"
                f"{row.dram.energy_j * 1e3:>12.3f}"
                f"{row.feram.energy_j * 1e3:>13.3f}"
                f"{row.energy_ratio:>9.2f}"
                f"{row.dram.cycles:>12d}"
                f"{row.feram.cycles:>12d}"
                f"{row.cycle_ratio:>9.2f}")
        lines.append(
            f"{'geomean':<18}{'':>12}{'':>13}"
            f"{self.mean_energy_ratio():>9.2f}{'':>12}{'':>12}"
            f"{self.mean_cycle_ratio():>9.2f}")
        return "\n".join(lines)


def run_comparison(workload: Workload, *,
                   dram_spec: MemorySpec | None = None,
                   feram_spec: MemorySpec | None = None,
                   functional: bool = False,
                   charge_io: bool = False,
                   seed: int = 0) -> WorkloadComparison:
    """Run one workload on both technologies with fresh engines."""
    dram_engine = make_engine("dram", functional=functional,
                              spec=dram_spec)
    feram_engine = make_engine("feram-2tnc", functional=functional,
                               spec=feram_spec)
    dram_result = workload.run(dram_engine, seed=seed, charge_io=charge_io)
    feram_result = workload.run(feram_engine, seed=seed,
                                charge_io=charge_io)
    if functional and not (dram_result.verified and feram_result.verified):
        raise WorkloadError(
            f"{workload.name}: functional verification failed "
            f"(dram={dram_result.verified}, feram={feram_result.verified})")
    return WorkloadComparison(workload=workload.name, title=workload.title,
                              dram=dram_result, feram=feram_result)


def run_fig6(n_bytes: int = GIB, *, functional: bool = False,
             charge_io: bool = False,
             dram_spec: MemorySpec | None = None,
             feram_spec: MemorySpec | None = None,
             seed: int = 0) -> Fig6Table:
    """Regenerate the paper's Fig. 6 at the given workload size.

    The paper runs 1 GB per workload in counting mode; functional mode
    (bit-exact, verified) is practical up to tens of MB.
    """
    rows = [run_comparison(workload, functional=functional, seed=seed,
                           charge_io=charge_io,
                           dram_spec=dram_spec, feram_spec=feram_spec)
            for workload in make_workloads(n_bytes)]
    return Fig6Table(rows)
