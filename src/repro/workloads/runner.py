"""Fig. 6 driver: the eight workloads on DRAM vs 2T-nC FeRAM.

Produces the paper's comparison — per-workload energy and execution
cycles for both technologies plus the FeRAM-over-DRAM improvement
factors (paper headline: ≈2.5× lower energy, ≈2× fewer cycles).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.arch.primitives import make_engine
from repro.arch.spec import MemorySpec
from repro.errors import WorkloadError
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.bitmap_index import BitmapIndexQuery
from repro.workloads.bnn import BnnInference
from repro.workloads.crc8 import Crc8
from repro.workloads.masked_init import MaskedInit
from repro.workloads.programs import WorkloadProgram, generate_inputs
from repro.workloads.set_ops import SetDifference, SetIntersection, SetUnion
from repro.workloads.xor_cipher import XorCipher

__all__ = ["WORKLOAD_CLASSES", "PROGRAM_WORKLOADS",
           "WorkloadComparison", "Fig6Table", "WorkloadServiceRun",
           "make_workloads", "run_comparison", "run_fig6",
           "run_workload"]

GIB = 1 << 30

#: the paper's eight applications, in its Fig. 6 order
WORKLOAD_CLASSES: tuple[type[Workload], ...] = (
    Crc8,
    XorCipher,
    SetUnion,
    SetIntersection,
    SetDifference,
    MaskedInit,
    BitmapIndexQuery,
    BnnInference,
)


#: workloads with a multi-statement program form (service-executable)
PROGRAM_WORKLOADS: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (BnnInference, Crc8, XorCipher, MaskedInit)
}


def make_workloads(n_bytes: int = GIB,
                   ) -> list[Workload]:
    """Instantiate all eight workloads at the given data size."""
    return [cls(n_bytes) for cls in WORKLOAD_CLASSES]


@dataclass
class WorkloadServiceRun:
    """Outcome of one program workload on a service backend."""

    workload: str
    technology: str
    backend: str
    n_lanes: int
    statements: int
    verified: bool | None        #: outputs vs numpy reference (None in
                                 #: counting mode or verify=False)
    energy_j: float              #: attributed in-memory energy
    cycles: int
    elapsed_s: float             #: program wall-clock (excl. ingest)
    ingest_s: float              #: column generation + load wall-clock
    result: object = field(repr=False, default=None)  #: ProgramResult

    @property
    def lanes_per_s(self) -> float:
        return self.n_lanes / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def energy_per_lane_nj(self) -> float:
        return self.energy_j * 1e9 / self.n_lanes


def run_workload(workload: "Workload | str", *,
                 n_bytes: int = 1 << 20,
                 technology: str = "feram-2tnc",
                 backend: str = "vector",
                 n_shards: int = 4,
                 functional: bool = True,
                 seed: int = 0,
                 verify: bool = True,
                 service=None,
                 tenant: str | None = None) -> WorkloadServiceRun:
    """Run a dataflow workload as a program on the bitwise service.

    ``workload`` is a :class:`Workload` instance or one of the
    :data:`PROGRAM_WORKLOADS` names (instantiated at ``n_bytes``).
    A fresh service is provisioned at the workload's lane count unless
    ``service`` is given (its table must be ``n_lanes`` wide and will
    gain the input columns).  ``tenant`` runs the whole workload
    inside that namespace of the (typically shared) service — input
    columns, program execution and accounting are tenant-isolated.
    In functional mode the outputs are verified bit-exactly against
    the workload's numpy reference unless ``verify=False`` (useful
    when benchmarking at GB scale).
    """
    if isinstance(workload, str):
        try:
            workload = PROGRAM_WORKLOADS[workload](n_bytes)
        except KeyError:
            raise WorkloadError(
                f"no program workload {workload!r} "
                f"(have {sorted(PROGRAM_WORKLOADS)})") from None
    workload_program: WorkloadProgram = workload.as_program(seed=seed)

    from repro.service import BitwiseService

    owns_service = service is None
    if owns_service:
        service = BitwiseService(
            technology, n_bits=workload_program.n_lanes,
            n_shards=n_shards, functional=functional, backend=backend)
    try:
        if service.n_bits != workload_program.n_lanes:
            raise WorkloadError(
                f"service width {service.n_bits} != workload lanes "
                f"{workload_program.n_lanes}")
        ingest_start = time.perf_counter()
        inputs = generate_inputs(workload_program, seed=seed) \
            if service.functional else \
            dict.fromkeys(workload_program.input_columns)
        for name, bits in inputs.items():
            service.create_column(name, bits, tenant=tenant)
        ingest_s = time.perf_counter() - ingest_start
        result = service.run_program(workload_program.program,
                                     tenant=tenant)
        verified: bool | None = None
        if service.functional and verify:
            expected = workload_program.reference(inputs)
            verified = all(
                np.array_equal(result.outputs[name][: ref.size],
                               ref.astype(np.uint8))
                for name, ref in expected.items())
        return WorkloadServiceRun(
            workload=workload.name,
            technology=service.technology,
            backend=service.backend,
            n_lanes=workload_program.n_lanes,
            statements=len(workload_program.program),
            verified=verified,
            energy_j=result.energy_j,
            cycles=result.cycles,
            elapsed_s=result.elapsed_s,
            ingest_s=ingest_s,
            result=result,
        )
    finally:
        if owns_service:
            service.close()


@dataclass
class WorkloadComparison:
    """One Fig. 6 row: a workload on both technologies."""

    workload: str
    title: str
    dram: WorkloadResult
    feram: WorkloadResult

    @property
    def energy_ratio(self) -> float:
        """DRAM energy / FeRAM energy (>1 means FeRAM wins)."""
        return self.dram.energy_j / self.feram.energy_j

    @property
    def cycle_ratio(self) -> float:
        """DRAM cycles / FeRAM cycles (>1 means FeRAM wins)."""
        return self.dram.cycles / self.feram.cycles


@dataclass
class Fig6Table:
    """All eight rows plus the aggregate factors."""

    rows: list[WorkloadComparison]

    def mean_energy_ratio(self) -> float:
        return float(np.exp(np.mean(
            [np.log(row.energy_ratio) for row in self.rows])))

    def mean_cycle_ratio(self) -> float:
        return float(np.exp(np.mean(
            [np.log(row.cycle_ratio) for row in self.rows])))

    def row(self, workload: str) -> WorkloadComparison:
        for row in self.rows:
            if row.workload == workload:
                return row
        raise WorkloadError(f"no workload {workload!r} in table")

    def format(self) -> str:
        lines = [
            f"{'workload':<18}{'DRAM E (mJ)':>12}{'FeRAM E (mJ)':>13}"
            f"{'E ratio':>9}{'DRAM cyc':>12}{'FeRAM cyc':>12}{'C ratio':>9}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.title:<18}"
                f"{row.dram.energy_j * 1e3:>12.3f}"
                f"{row.feram.energy_j * 1e3:>13.3f}"
                f"{row.energy_ratio:>9.2f}"
                f"{row.dram.cycles:>12d}"
                f"{row.feram.cycles:>12d}"
                f"{row.cycle_ratio:>9.2f}")
        lines.append(
            f"{'geomean':<18}{'':>12}{'':>13}"
            f"{self.mean_energy_ratio():>9.2f}{'':>12}{'':>12}"
            f"{self.mean_cycle_ratio():>9.2f}")
        return "\n".join(lines)


def run_comparison(workload: Workload, *,
                   dram_spec: MemorySpec | None = None,
                   feram_spec: MemorySpec | None = None,
                   functional: bool = False,
                   charge_io: bool = False,
                   seed: int = 0) -> WorkloadComparison:
    """Run one workload on both technologies with fresh engines."""
    dram_engine = make_engine("dram", functional=functional,
                              spec=dram_spec)
    feram_engine = make_engine("feram-2tnc", functional=functional,
                               spec=feram_spec)
    dram_result = workload.run(dram_engine, seed=seed, charge_io=charge_io)
    feram_result = workload.run(feram_engine, seed=seed,
                                charge_io=charge_io)
    if functional and not (dram_result.verified and feram_result.verified):
        raise WorkloadError(
            f"{workload.name}: functional verification failed "
            f"(dram={dram_result.verified}, feram={feram_result.verified})")
    return WorkloadComparison(workload=workload.name, title=workload.title,
                              dram=dram_result, feram=feram_result)


def run_fig6(n_bytes: int = GIB, *, functional: bool = False,
             charge_io: bool = False,
             dram_spec: MemorySpec | None = None,
             feram_spec: MemorySpec | None = None,
             seed: int = 0) -> Fig6Table:
    """Regenerate the paper's Fig. 6 at the given workload size.

    The paper runs 1 GB per workload in counting mode; functional mode
    (bit-exact, verified) is practical up to tens of MB.
    """
    rows = [run_comparison(workload, functional=functional, seed=seed,
                           charge_io=charge_io,
                           dram_spec=dram_spec, feram_spec=feram_spec)
            for workload in make_workloads(n_bytes)]
    return Fig6Table(rows)
