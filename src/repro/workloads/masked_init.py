"""Masked initialization: ``D' = (M AND V) OR (NOT M AND D)``.

Selective bulk update of a data region under a bitmask — the paper's
"Masked Initialization" workload (memset-under-mask, used by databases
and garbage collectors).  Maps to one bulk multiplexer (select).
"""

from __future__ import annotations

import numpy as np

from repro.arch.engine import BulkEngine
from repro.arch.program import Program
from repro.workloads.base import Workload, WorkloadIO
from repro.workloads.programs import WorkloadProgram

__all__ = ["MaskedInit"]


class MaskedInit(Workload):
    name = "masked_init"
    title = "Masked Initialization"

    def as_program(self, *, seed: int = 0) -> WorkloadProgram:
        program = Program([("updated", "sel(mask, init, data)")])
        return WorkloadProgram(self.name, self.vector_bits(1.0 / 3.0),
                               program, self.reference,
                               densities={"mask": 0.25})

    def execute(self, engine: BulkEngine, io: WorkloadIO) -> None:
        n_bits = self.vector_bits(1.0 / 3.0)
        data = io.input("data", n_bits)
        mask = io.input("mask", n_bits, density=0.25, group_with=data)
        init = io.input("init", n_bits, group_with=data)
        updated = engine.select(mask, init, data, "updated")
        io.output("updated", updated)
        engine.free(data, mask, init, updated)

    def reference(self, inputs: dict[str, np.ndarray],
                  ) -> dict[str, np.ndarray]:
        mask = inputs["mask"]
        return {"updated": np.where(mask == 1, inputs["init"],
                                    inputs["data"]).astype(np.uint8)}
